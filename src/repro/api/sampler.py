"""The C-SAW MAIN loop (Fig. 2(b)) executed on the simulated GPU.

:class:`GraphSampler` drives any :class:`~repro.api.bias.SamplingProgram`
over a graph for a set of instances:

1. select ``FrontierSize`` vertices from each instance's frontier pool using
   ``VERTEXBIAS`` (line 4);
2. gather the neighbors of every frontier vertex (line 5);
3. select ``NeighborSize`` neighbors using ``EDGEBIAS`` (line 6) -- per
   frontier vertex or per layer depending on the configured scope;
4. insert the vertices returned by ``UPDATE`` into the frontier pool
   (line 7) and append the sampled edges to the instance's sample (line 8);
5. repeat until the configured depth is reached or every instance runs out of
   frontier.

Each depth step is executed as one simulated kernel: all SELECT invocations
of the step are warp tasks inside it, which is how the result's kernel-time
and SEPS numbers are obtained.

By default the step body runs on the batched execution engine
(:class:`repro.engine.BatchedStepEngine`), which executes every instance's
gather / SELECT / UPDATE as flat array programs; ``use_engine=False`` keeps
the original instance-by-instance scalar loop.  Both paths produce
bit-identical results for a fixed seed (the engine equivalence tests assert
this for every registered algorithm).

Since the unified-planner refactor :class:`GraphSampler` is a thin facade:
:meth:`run` builds an in-memory :class:`~repro.planner.plan.ExecutionPlan`
(which also performs the uniform plan-time seed validation) and executes it
on the shared :class:`~repro.planner.executor.Executor`; the scalar step
body (:meth:`_step_instance`) stays here as the executor's legacy callable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.api.bias import FrontierPoolView, SamplingProgram
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope
from repro.api.instance import InstanceState, make_instances
from repro.api.results import SampleResult
from repro.api.select import gather_neighbors, warp_select
from repro.engine.step import BatchedStepEngine, validate_biases
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device, make_device
from repro.gpusim.prng import CounterRNG
from repro.gpusim.warp import WarpExecutor
from repro.graph.csr import CSRGraph

__all__ = ["GraphSampler", "sample_graph"]


class GraphSampler:
    """In-memory C-SAW sampler for a single simulated GPU."""

    def __init__(
        self,
        graph: CSRGraph,
        program: SamplingProgram,
        config: SamplingConfig,
        device: Optional[Device] = None,
        *,
        use_engine: bool = True,
        use_compiled: Optional[bool] = None,
        algorithm: Optional[str] = None,
    ):
        from repro.graph.delta import as_csr

        graph = as_csr(graph)  # DeltaGraphs sample their canonical snapshot
        if graph.num_vertices == 0:
            raise ValueError("cannot sample an empty graph")
        self.graph = graph
        self.program = program
        self.config = config
        # Advisory label only (plan attribution / profiler keys); execution
        # is driven entirely by the program object.
        self.algorithm = algorithm
        self.device = device if device is not None else make_device("gpu")
        self.rng = CounterRNG(config.seed)
        self.use_engine = use_engine
        # The compiled tier replaces the engine depth loop, so it is only
        # meaningful when the engine path is active.
        self.use_compiled = use_compiled if use_engine else False
        from repro.compiled.step_engine import make_step_engine

        self.engine = make_step_engine(
            graph, program, config, self.rng, use_compiled=self.use_compiled
        )
        self._warp_counter = 0

    # ------------------------------------------------------------------ #
    def _plan(self, instances: List[InstanceState]):
        """Plan-time validation + the declarative plan for these instances."""
        from repro.planner.planner import PlanRequest, plan

        return plan(PlanRequest(
            graph=self.graph,
            program=self.program,
            config=self.config,
            algorithm=self.algorithm,
            instances=instances,
            force_route="in_memory",
            allow_compiled=self.use_compiled,
        ))

    def plan(
        self,
        seeds: Union[Sequence[int], Sequence[Sequence[int]], np.ndarray],
        *,
        num_instances: Optional[int] = None,
    ):
        """The :class:`ExecutionPlan` a :meth:`run` with these seeds executes.

        Also validates the seeds (plan-time validation), so an invalid seed
        set fails here exactly as it would fail inside :meth:`run`.
        """
        return self._plan(make_instances(seeds, num_instances=num_instances))

    def run(
        self,
        seeds: Union[Sequence[int], Sequence[Sequence[int]], np.ndarray],
        *,
        num_instances: Optional[int] = None,
    ) -> SampleResult:
        """Run the MAIN loop for the given seeds and return the samples."""
        from repro.planner.executor import Executor

        instances = make_instances(seeds, num_instances=num_instances)
        execution_plan = self._plan(instances)
        compiled_kernel = None
        if execution_plan.step_tier == "compiled":
            from repro.compiled import get_kernel_spec, instantiate_kernel

            spec = get_kernel_spec(self.program, self.config, execution_plan)
            compiled_kernel = instantiate_kernel(spec, self.engine)
        executor = Executor(
            execution_plan,
            self.graph,
            program=self.program,
            engine=self.engine,
            device=self.device,
            use_engine=self.use_engine,
            scalar_step=self._step_instance,
            compiled_kernel=compiled_kernel,
        )
        return executor.execute(instances)

    # ------------------------------------------------------------------ #
    def _step_instance(
        self,
        inst: InstanceState,
        depth: int,
        cost: CostModel,
        iteration_counts: List[int],
    ) -> int:
        """Advance one instance by one MAIN-loop iteration; returns warp-task count."""
        cfg = self.config
        graph = self.graph
        program = self.program
        tasks = 0

        pool = inst.frontier_pool
        frontier, frontier_positions, tasks_inc = self._select_frontier(inst, pool, depth, cost)
        tasks += tasks_inc
        if frontier.size == 0:
            inst.finished = True
            return tasks

        inserted: List[np.ndarray] = []
        if cfg.scope is SelectionScope.PER_LAYER:
            sampled_any, tasks_inc = self._sample_layer(inst, frontier, depth, cost,
                                                        iteration_counts, inserted)
            tasks += tasks_inc
        else:
            sampled_any = False
            for slot, vertex in enumerate(frontier):
                sampled, tasks_inc = self._sample_vertex(
                    inst, int(vertex), slot, depth, cost, iteration_counts, inserted
                )
                sampled_any = sampled_any or sampled
                tasks += tasks_inc

        # Remember the vertex explored at this step for dynamic biases
        # (node2vec).  Only single-vertex (walk-style) frontiers define a
        # previous vertex; with a wider frontier there is no single "vertex
        # the walker came from", and feeding frontier[0] to a node2vec-style
        # bias would silently skew it (see InstanceState.prev_vertex).
        if frontier.size == 1:
            inst.prev_vertex = int(frontier[0])

        self._update_pool(inst, pool, frontier_positions, inserted)
        inst.depth = depth + 1
        if inst.pool_size == 0:
            inst.finished = True
        return tasks

    # ------------------------------------------------------------------ #
    def _select_frontier(
        self,
        inst: InstanceState,
        pool: np.ndarray,
        depth: int,
        cost: CostModel,
    ):
        """Line 4 of Fig. 2(b): SELECT(VERTEXBIAS(FrontierPool), FrontierSize)."""
        cfg = self.config
        if cfg.frontier_size == 0 or pool.size <= cfg.frontier_size:
            return pool, np.arange(pool.size), 0

        view = FrontierPoolView(
            vertices=pool,
            degrees=self.graph.degrees[pool],
            instance=inst,
            graph=self.graph,
        )
        biases = self._validated_bias(self.program.vertex_bias(view), pool.size, "vertex_bias")
        positive = int(np.count_nonzero(biases > 0))
        count = min(cfg.frontier_size, positive)
        if count == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0
        warp = self._next_warp(cost)
        result = warp_select(
            biases,
            count,
            warp,
            inst.instance_id,
            depth,
            0,
            with_replacement=False,
            strategy=cfg.strategy,
            detector=cfg.detector,
        )
        return pool[result.indices], result.indices, 1

    def _sample_vertex(
        self,
        inst: InstanceState,
        vertex: int,
        slot: int,
        depth: int,
        cost: CostModel,
        iteration_counts: List[int],
        inserted: List[np.ndarray],
    ):
        """Lines 5-8 for one frontier vertex under per-vertex scope."""
        cfg = self.config
        edges = gather_neighbors(self.graph, vertex, inst, cost)
        if edges.size == 0:
            return False, 0
        biases = self._validated_bias(self.program.edge_bias(edges), edges.size, "edge_bias")
        requested = self.program.neighbor_count(edges, cfg.neighbor_size)
        if requested <= 0:
            return False, 0
        positive = int(np.count_nonzero(biases > 0))
        if positive == 0:
            return False, 0
        count = requested if cfg.with_replacement else min(requested, positive)
        warp = self._next_warp(cost)
        result = warp_select(
            biases,
            count,
            warp,
            inst.instance_id,
            depth,
            slot + 1,
            with_replacement=cfg.with_replacement,
            strategy=cfg.strategy,
            detector=cfg.detector,
        )
        sampled = edges.neighbors[result.indices]
        iteration_counts.extend(int(i) for i in result.iterations)
        accepted = np.asarray(self.program.accept(edges, sampled), dtype=np.int64).reshape(-1)
        if accepted.size:
            inst.record_edges(vertex, accepted)
            cost.sampled_edges += int(accepted.size)
        # UPDATE sees the visited set as of the *previous* steps so it can
        # filter re-visits; the newly accepted vertices are marked afterwards.
        new_vertices = np.asarray(
            self.program.update(edges, accepted), dtype=np.int64
        ).reshape(-1)
        if accepted.size and cfg.track_visited:
            inst.mark_visited(accepted)
        if new_vertices.size:
            inserted.append(new_vertices)
        return True, 1

    def _sample_layer(
        self,
        inst: InstanceState,
        frontier: np.ndarray,
        depth: int,
        cost: CostModel,
        iteration_counts: List[int],
        inserted: List[np.ndarray],
    ):
        """Lines 5-8 under per-layer scope (layer sampling)."""
        cfg = self.config
        pools = []
        for vertex in frontier:
            edges = gather_neighbors(self.graph, int(vertex), inst, cost)
            if edges.size == 0:
                continue
            biases = self._validated_bias(self.program.edge_bias(edges), edges.size, "edge_bias")
            pools.append((edges, biases))
        if not pools:
            return False, 0
        all_src = np.concatenate([np.full(e.size, e.src, dtype=np.int64) for e, _ in pools])
        all_neighbors = np.concatenate([e.neighbors for e, _ in pools])
        all_biases = np.concatenate([b for _, b in pools])
        positive = int(np.count_nonzero(all_biases > 0))
        if positive == 0:
            return False, 0
        count = cfg.neighbor_size if cfg.with_replacement else min(cfg.neighbor_size, positive)
        warp = self._next_warp(cost)
        result = warp_select(
            all_biases,
            count,
            warp,
            inst.instance_id,
            depth,
            1,
            with_replacement=cfg.with_replacement,
            strategy=cfg.strategy,
            detector=cfg.detector,
        )
        iteration_counts.extend(int(i) for i in result.iterations)
        chosen_src = all_src[result.indices]
        chosen_dst = all_neighbors[result.indices]
        for s, d in zip(chosen_src, chosen_dst):
            inst.record_edges(int(s), np.array([d]))
        cost.sampled_edges += int(chosen_dst.size)
        # UPDATE is called per source vertex with the subset it contributed;
        # it sees the visited set as of the previous steps.
        for edges, _ in pools:
            mask = chosen_src == edges.src
            if not mask.any():
                continue
            new_vertices = np.asarray(
                self.program.update(edges, chosen_dst[mask]), dtype=np.int64
            ).reshape(-1)
            if new_vertices.size:
                inserted.append(new_vertices)
        if cfg.track_visited:
            inst.mark_visited(chosen_dst)
        return True, 1

    def _update_pool(
        self,
        inst: InstanceState,
        pool: np.ndarray,
        frontier_positions: np.ndarray,
        inserted: List[np.ndarray],
    ) -> None:
        """Line 7 of Fig. 2(b): FrontierPool.INSERT(UPDATE(Sampled))."""
        new_vertices = (
            np.concatenate(inserted) if inserted else np.empty(0, dtype=np.int64)
        )
        if self.config.pool_policy is PoolPolicy.REPLACE_SELECTED:
            keep = np.ones(pool.size, dtype=bool)
            keep[np.asarray(frontier_positions, dtype=np.int64)] = False
            inst.set_pool(np.concatenate([pool[keep], new_vertices]))
        else:  # NEXT_LAYER
            inst.set_pool(new_vertices)

    # ------------------------------------------------------------------ #
    def _next_warp(self, cost: CostModel) -> WarpExecutor:
        warp = WarpExecutor(warp_id=self._warp_counter, cost=cost, rng=self.rng)
        self._warp_counter += 1
        return warp

    def _validated_bias(self, biases, expected: int, label: str) -> np.ndarray:
        return validate_biases(biases, expected, label)


def sample_graph(
    graph: CSRGraph,
    program: SamplingProgram,
    seeds: Union[Sequence[int], Sequence[Sequence[int]], np.ndarray],
    config: Optional[SamplingConfig] = None,
    *,
    num_instances: Optional[int] = None,
    device: Optional[Device] = None,
    use_engine: bool = True,
    use_compiled: Optional[bool] = None,
) -> SampleResult:
    """One-call convenience wrapper around :class:`GraphSampler`."""
    sampler = GraphSampler(
        graph,
        program,
        config or SamplingConfig(),
        device,
        use_engine=use_engine,
        use_compiled=use_compiled,
    )
    return sampler.run(seeds, num_instances=num_instances)
