"""The user-facing bias API: ``VERTEXBIAS`` / ``EDGEBIAS`` / ``UPDATE``.

The paper's API (Fig. 2(a)) asks users to define three functions around
*bias* -- the quantity proportional to each candidate's selection probability
(Theorem 1).  This module provides the Python equivalent as a small class the
user subclasses.  The functions are vectorised: instead of being called once
per vertex or edge they receive the whole candidate pool as arrays, which is
both the idiomatic NumPy formulation and how the GPU kernels consume biases.

Two context views are passed to the hooks:

* :class:`FrontierPoolView` -- the instance's frontier pool (for
  ``vertex_bias``), giving access to the pool vertices, their degrees and the
  owning instance.
* :class:`EdgePool` -- one frontier vertex's gathered neighbor list (for
  ``edge_bias`` and ``update``), with the source vertex, neighbor ids, edge
  weights and the owning instance (whose ``prev_vertex`` field enables
  node2vec-style dynamic biases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.instance import InstanceState
    from repro.graph.csr import CSRGraph

__all__ = [
    "FrontierPoolView",
    "EdgePool",
    "SegmentedEdgePool",
    "SamplingProgram",
    "UniformProgram",
]


@dataclass(frozen=True)
class FrontierPoolView:
    """Read-only view of an instance's frontier pool handed to ``vertex_bias``."""

    #: Vertices currently in the frontier pool.
    vertices: np.ndarray
    #: Out-degree of each pool vertex.
    degrees: np.ndarray
    #: The owning instance (exposes ``prev_vertex``, ``visited``, ``depth``).
    instance: "InstanceState"
    #: The graph being sampled.
    graph: "CSRGraph"

    @property
    def size(self) -> int:
        """Number of candidates in the pool."""
        return int(self.vertices.size)


@dataclass(frozen=True)
class EdgePool:
    """One frontier vertex's neighbor pool handed to ``edge_bias`` / ``update``."""

    #: The frontier vertex whose neighbors were gathered (``e.v`` in the paper).
    src: int
    #: Neighbor vertex ids (``e.u``).
    neighbors: np.ndarray
    #: Edge weights aligned with ``neighbors`` (ones when the graph is unweighted).
    weights: np.ndarray
    #: The owning instance.
    instance: "InstanceState"
    #: The graph being sampled.
    graph: "CSRGraph"

    @property
    def size(self) -> int:
        """Number of candidate neighbors."""
        return int(self.neighbors.size)

    def neighbor_degrees(self) -> np.ndarray:
        """Out-degree of every candidate neighbor."""
        return self.graph.degrees[self.neighbors]


class SegmentedEdgePool:
    """Many frontier vertices' neighbor pools stored back to back.

    The batched execution engine gathers one whole depth step's CSR rows into
    flat arrays; ``edge_bias_batch`` receives this view and returns one flat
    bias array aligned with ``neighbors``.  Segment ``k`` (one frontier
    vertex's pool) occupies ``[offsets[k], offsets[k + 1])`` of the flat
    arrays and can be materialised as a scalar :class:`EdgePool` via
    :meth:`segment` -- which is exactly what the default per-segment fallback
    does.

    Attributes
    ----------
    src:
        Frontier vertex of each segment (``e.v``), shape ``(K,)``.
    offsets:
        Flat-array offsets of each segment, shape ``(K + 1,)``.
    neighbors:
        All segments' neighbor ids back to back (``e.u``).
    weights:
        Edge weights aligned with ``neighbors``; materialised lazily as ones
        on unweighted graphs so uniform-bias programs never pay for them.
    instances:
        Owning instance of each segment (one entry per segment).
    graph:
        The graph being sampled.
    """

    __slots__ = ("src", "offsets", "neighbors", "instances", "graph", "_weights")

    def __init__(
        self,
        src: np.ndarray,
        offsets: np.ndarray,
        neighbors: np.ndarray,
        weights: "np.ndarray | None",
        instances: Sequence["InstanceState"],
        graph: "CSRGraph",
    ):
        self.src = src
        self.offsets = offsets
        self.neighbors = neighbors
        self.instances = instances
        self.graph = graph
        self._weights = weights

    @property
    def weights(self) -> np.ndarray:
        """Edge weights aligned with ``neighbors`` (ones when unweighted)."""
        if self._weights is None:
            self._weights = np.ones(self.neighbors.size, dtype=np.float64)
        return self._weights

    @property
    def num_segments(self) -> int:
        """Number of candidate pools in the batch."""
        return int(self.src.size)

    @property
    def size(self) -> int:
        """Total number of candidate neighbors across all segments."""
        return int(self.neighbors.size)

    def lengths(self) -> np.ndarray:
        """Per-segment candidate counts."""
        return np.diff(self.offsets)

    def segment(self, k: int) -> EdgePool:
        """Segment ``k`` as a scalar :class:`EdgePool` (views, no copies)."""
        lo, hi = int(self.offsets[k]), int(self.offsets[k + 1])
        return EdgePool(
            src=int(self.src[k]),
            neighbors=self.neighbors[lo:hi],
            weights=self.weights[lo:hi],
            instance=self.instances[k],
            graph=self.graph,
        )

    def neighbor_degrees(self) -> np.ndarray:
        """Out-degree of every candidate neighbor (flat)."""
        return self.graph.degrees[self.neighbors]


class SamplingProgram:
    """Base class users subclass to express a sampling / random-walk algorithm.

    The three hooks correspond one-to-one to the paper's API functions.  The
    default implementations give uniform biases and add every sampled
    neighbor to the frontier pool, i.e. unbiased neighbor sampling.

    The batched execution engine (:mod:`repro.engine`) calls the ``*_batch``
    variants, whose defaults loop the scalar hooks segment by segment in the
    same order the scalar MAIN loop would call them.  Programs whose biases
    are pure array functions can override the batch variants to compute the
    whole step in one shot; stateful hooks (own RNG streams, shared caches)
    should keep the default fallback, which preserves per-segment call order.
    """

    #: Human-readable algorithm name (used by the registry and harness).
    name: str = "custom"

    #: Whether independent runs of this program may be coalesced into one
    #: engine batch (the sampling service's request coalescing).  Opt-in:
    #: set it to ``True`` only after verifying every hook is a deterministic
    #: function of its arguments.  Programs that consume a private RNG
    #: stream in hook call order (forest fire, Metropolis-Hastings,
    #: jump/restart) would interleave draws across requests and silently
    #: break the service's bit-identity guarantee, so the default keeps
    #: unknown programs at one request per batch.
    supports_coalescing: bool = False

    #: Bias kind the compiled tier (:mod:`repro.compiled`) may specialise
    #: for, or ``None`` (the default) to always interpret.  Declaring a kind
    #: is a promise that ``edge_bias`` / ``edge_bias_batch`` compute exactly
    #: that formula: ``"uniform"`` (all ones), ``"weight_or_degree"`` (edge
    #: weight on weighted graphs, neighbor degree + 1 otherwise) or
    #: ``"node2vec"`` (the p/q second-order bias), or ``"weight_or_uniform"``
    #: (edge weight on weighted graphs, all ones otherwise).  The compiler
    #: additionally verifies the other hooks are the defaults -- or carry a
    #: matching ``compiled_*`` declaration below -- before fusing.
    compiled_bias: Optional[str] = None

    #: Declared shape of an overridden :meth:`update` hook, or ``None``
    #: (the default) when the hook is the inherited identity.  Recognised
    #: values: ``"unvisited"`` (keep only vertices the instance has not
    #: visited; the program must also run with ``track_visited=True``) and
    #: ``"keep_src_on_dead_end"`` (re-insert the pool's source vertex when
    #: nothing was accepted, as the multi-dimensional walk does).
    compiled_update: Optional[str] = None

    #: Declared shape of an overridden :meth:`neighbor_count` hook, or
    #: ``None`` for the config's fixed ``neighbor_size``.  Recognised value:
    #: ``"pool_capped"`` (the segment's full pool size, optionally capped by
    #: the program's ``max_per_vertex`` -- snowball sampling's take-all).
    compiled_neighbor_count: Optional[str] = None

    #: Declared shape of an overridden :meth:`vertex_bias` hook, or ``None``
    #: for the inherited all-ones.  Recognised value: ``"degree_plus_one"``
    #: (frontier candidates weighted by out-degree + 1).
    compiled_vertex_bias: Optional[str] = None

    def compiled_cache_token(self) -> object:
        """Hashable instance parameters the compiled kernel depends on.

        Programs whose bias formula has per-instance parameters (node2vec's
        ``p``/``q``) return them here so differently parameterised instances
        never share a cached kernel.  ``None`` (the default) means the class
        alone identifies the bias.
        """
        return None

    # ------------------------------------------------------------------ #
    # The paper's three API functions
    # ------------------------------------------------------------------ #
    def vertex_bias(self, pool: FrontierPoolView) -> np.ndarray:
        """Bias of each frontier-pool candidate (``VERTEXBIAS``).

        Must return a non-negative array of shape ``(pool.size,)``.
        """
        return np.ones(pool.size, dtype=np.float64)

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        """Bias of each neighbor candidate (``EDGEBIAS``).

        Must return a non-negative array of shape ``(edges.size,)``.
        """
        return np.ones(edges.size, dtype=np.float64)

    def accept(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        """Subset of selected neighbors to record into the sample.

        Most algorithms record everything (the default).  Metropolis-Hastings
        random walk overrides this to implement its accept/reject step: a
        rejected proposal is not recorded and the walker stays put.
        """
        return sampled

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        """Vertices to insert into the frontier pool (``UPDATE``).

        ``sampled`` holds the *accepted* neighbor vertices selected from
        ``edges``.  The default adds all of them; subclasses can filter
        visited vertices, implement jump/restart behaviour, or return an
        empty array to stop.
        """
        return sampled

    # ------------------------------------------------------------------ #
    # Batched variants used by the execution engine
    # ------------------------------------------------------------------ #
    def vertex_bias_batch(
        self, pools: Sequence[FrontierPoolView]
    ) -> List[np.ndarray]:
        """Biases for many instances' frontier pools at once.

        Default: call :meth:`vertex_bias` once per pool, in instance order
        (identical to the scalar MAIN loop's call sequence).
        """
        return [np.asarray(self.vertex_bias(pool), dtype=np.float64).reshape(-1)
                for pool in pools]

    def edge_bias_batch(self, edges: SegmentedEdgePool) -> np.ndarray:
        """Biases for a whole depth step's neighbor pools at once.

        Must return a non-negative flat array of shape ``(edges.size,)``
        aligned with ``edges.neighbors``.  Default: call :meth:`edge_bias`
        once per segment in segment order (identical to the scalar MAIN
        loop's call sequence) and concatenate.
        """
        if edges.num_segments == 0:
            return np.empty(0, dtype=np.float64)
        parts = []
        lengths = edges.lengths()
        for k in range(edges.num_segments):
            part = np.asarray(self.edge_bias(edges.segment(k)),
                              dtype=np.float64).reshape(-1)
            if part.size != int(lengths[k]):
                raise ValueError(
                    f"edge_bias must return one bias per candidate "
                    f"(expected {int(lengths[k])}, got {part.size})"
                )
            parts.append(part)
        return np.concatenate(parts)

    # ------------------------------------------------------------------ #
    # Optional knobs algorithms can override
    # ------------------------------------------------------------------ #
    def neighbor_count(self, edges: EdgePool, requested: int) -> int:
        """How many neighbors to select for this pool.

        Defaults to the configured ``NeighborSize``; forest fire sampling
        overrides this with a geometric draw (its "burning probability").
        """
        return requested

    def describe(self) -> str:
        """One-line description used by the benchmark harness."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class UniformProgram(SamplingProgram):
    """Uniform vertex and edge biases; the simplest possible program."""

    name = "uniform"
    supports_coalescing = True  # stateless hooks
