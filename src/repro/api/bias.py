"""The user-facing bias API: ``VERTEXBIAS`` / ``EDGEBIAS`` / ``UPDATE``.

The paper's API (Fig. 2(a)) asks users to define three functions around
*bias* -- the quantity proportional to each candidate's selection probability
(Theorem 1).  This module provides the Python equivalent as a small class the
user subclasses.  The functions are vectorised: instead of being called once
per vertex or edge they receive the whole candidate pool as arrays, which is
both the idiomatic NumPy formulation and how the GPU kernels consume biases.

Two context views are passed to the hooks:

* :class:`FrontierPoolView` -- the instance's frontier pool (for
  ``vertex_bias``), giving access to the pool vertices, their degrees and the
  owning instance.
* :class:`EdgePool` -- one frontier vertex's gathered neighbor list (for
  ``edge_bias`` and ``update``), with the source vertex, neighbor ids, edge
  weights and the owning instance (whose ``prev_vertex`` field enables
  node2vec-style dynamic biases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.instance import InstanceState
    from repro.graph.csr import CSRGraph

__all__ = ["FrontierPoolView", "EdgePool", "SamplingProgram", "UniformProgram"]


@dataclass(frozen=True)
class FrontierPoolView:
    """Read-only view of an instance's frontier pool handed to ``vertex_bias``."""

    #: Vertices currently in the frontier pool.
    vertices: np.ndarray
    #: Out-degree of each pool vertex.
    degrees: np.ndarray
    #: The owning instance (exposes ``prev_vertex``, ``visited``, ``depth``).
    instance: "InstanceState"
    #: The graph being sampled.
    graph: "CSRGraph"

    @property
    def size(self) -> int:
        """Number of candidates in the pool."""
        return int(self.vertices.size)


@dataclass(frozen=True)
class EdgePool:
    """One frontier vertex's neighbor pool handed to ``edge_bias`` / ``update``."""

    #: The frontier vertex whose neighbors were gathered (``e.v`` in the paper).
    src: int
    #: Neighbor vertex ids (``e.u``).
    neighbors: np.ndarray
    #: Edge weights aligned with ``neighbors`` (ones when the graph is unweighted).
    weights: np.ndarray
    #: The owning instance.
    instance: "InstanceState"
    #: The graph being sampled.
    graph: "CSRGraph"

    @property
    def size(self) -> int:
        """Number of candidate neighbors."""
        return int(self.neighbors.size)

    def neighbor_degrees(self) -> np.ndarray:
        """Out-degree of every candidate neighbor."""
        return self.graph.degrees[self.neighbors]


class SamplingProgram:
    """Base class users subclass to express a sampling / random-walk algorithm.

    The three hooks correspond one-to-one to the paper's API functions.  The
    default implementations give uniform biases and add every sampled
    neighbor to the frontier pool, i.e. unbiased neighbor sampling.
    """

    #: Human-readable algorithm name (used by the registry and harness).
    name: str = "custom"

    # ------------------------------------------------------------------ #
    # The paper's three API functions
    # ------------------------------------------------------------------ #
    def vertex_bias(self, pool: FrontierPoolView) -> np.ndarray:
        """Bias of each frontier-pool candidate (``VERTEXBIAS``).

        Must return a non-negative array of shape ``(pool.size,)``.
        """
        return np.ones(pool.size, dtype=np.float64)

    def edge_bias(self, edges: EdgePool) -> np.ndarray:
        """Bias of each neighbor candidate (``EDGEBIAS``).

        Must return a non-negative array of shape ``(edges.size,)``.
        """
        return np.ones(edges.size, dtype=np.float64)

    def accept(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        """Subset of selected neighbors to record into the sample.

        Most algorithms record everything (the default).  Metropolis-Hastings
        random walk overrides this to implement its accept/reject step: a
        rejected proposal is not recorded and the walker stays put.
        """
        return sampled

    def update(self, edges: EdgePool, sampled: np.ndarray) -> np.ndarray:
        """Vertices to insert into the frontier pool (``UPDATE``).

        ``sampled`` holds the *accepted* neighbor vertices selected from
        ``edges``.  The default adds all of them; subclasses can filter
        visited vertices, implement jump/restart behaviour, or return an
        empty array to stop.
        """
        return sampled

    # ------------------------------------------------------------------ #
    # Optional knobs algorithms can override
    # ------------------------------------------------------------------ #
    def neighbor_count(self, edges: EdgePool, requested: int) -> int:
        """How many neighbors to select for this pool.

        Defaults to the configured ``NeighborSize``; forest fire sampling
        overrides this with a geometric draw (its "burning probability").
        """
        return requested

    def describe(self) -> str:
        """One-line description used by the benchmark harness."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class UniformProgram(SamplingProgram):
    """Uniform vertex and edge biases; the simplest possible program."""

    name = "uniform"
