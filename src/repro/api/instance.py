"""Per-instance sampling state.

A sampling *instance* corresponds to one sampled subgraph (or one walk): it
owns a frontier pool, the edges sampled so far, an optional visited set (for
sampling without revisits) and bookkeeping such as the vertex visited at the
previous step (needed by node2vec's dynamic bias) and the current depth.

Thousands of instances run concurrently in C-SAW; each instance's randomness
is keyed by its ``instance_id`` so results are independent of scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["InstanceState", "make_instances", "validate_seed_instances"]


def validate_seed_instances(
    instances, num_vertices: int, *, reject_duplicates: bool = False
) -> None:
    """Reject bad seed sets: the planner's uniform plan-time validation.

    An empty instance list, an instance with no seeds or a seed outside
    ``[0, num_vertices)`` raise the same
    :class:`~repro.planner.errors.SeedValidationError` (a ``ValueError``
    subclass), no matter which entry point the run came through.

    ``reject_duplicates`` additionally rejects duplicate seed vertices
    inside one instance's initial pool.  The planner sets it for
    without-replacement (traversal-sampling) configs, where a duplicate
    seed is a user error; with-replacement walks legitimately start several
    walkers on one vertex.
    """
    from repro.planner.errors import SeedValidationError

    instances = list(instances)
    if not instances:
        raise SeedValidationError("at least one seed is required")
    for inst in instances:
        if inst.frontier_pool.size == 0:
            raise SeedValidationError(
                f"instance {inst.instance_id} has no seed vertices"
            )
        if inst.frontier_pool.min() < 0 or inst.frontier_pool.max() >= num_vertices:
            raise SeedValidationError(
                f"instance {inst.instance_id} has seed vertices outside the graph"
            )
        if (
            reject_duplicates
            and np.unique(inst.frontier_pool).size != inst.frontier_pool.size
        ):
            raise SeedValidationError(
                f"instance {inst.instance_id} has duplicate seed vertices "
                "(sampling without replacement)"
            )


@dataclass
class InstanceState:
    """Mutable state of one sampling instance."""

    instance_id: int
    frontier_pool: np.ndarray
    depth: int = 0
    finished: bool = False
    #: Vertex explored at the preceding step (node2vec's ``PrevSource``).
    #:
    #: **Contract:** the samplers maintain this field only for *single-vertex
    #: (walk-style) frontiers* -- the one case where "the vertex the walker
    #: came from" is well defined.  When an instance expands several frontier
    #: vertices in one iteration the field keeps its previous value; dynamic
    #: biases that read it (node2vec) are therefore only meaningful for
    #: NeighborSize/FrontierSize = 1 walk configurations.  (The out-of-memory
    #: scheduler additionally updates it per expanded queue entry, which
    #: coincides with this contract for walk workloads.)
    prev_vertex: int = -1
    #: Per-instance visited set (only maintained when the config asks for it).
    visited: set = field(default_factory=set)
    #: The seed vertices this instance started from (immutable copy of the
    #: initial frontier pool).
    seeds: np.ndarray = field(default=None)
    #: Sampled edges, stored as chunks of (src, dst) arrays so batched
    #: recording appends whole arrays instead of per-edge Python ints.
    _src: List[np.ndarray] = field(default_factory=list)
    _dst: List[np.ndarray] = field(default_factory=list)
    _num_edges: int = 0

    def __post_init__(self) -> None:
        self.frontier_pool = np.asarray(self.frontier_pool, dtype=np.int64).reshape(-1)
        if self.seeds is None:
            self.seeds = self.frontier_pool.copy()
        else:
            self.seeds = np.asarray(self.seeds, dtype=np.int64).reshape(-1)
        self.visited = set(int(v) for v in self.frontier_pool) if self.visited == set() else self.visited

    # ------------------------------------------------------------------ #
    @property
    def num_sampled_edges(self) -> int:
        """Number of edges recorded so far."""
        return self._num_edges

    @property
    def pool_size(self) -> int:
        """Current frontier pool size."""
        return int(self.frontier_pool.size)

    def record_edges(self, src: int | np.ndarray, dst: np.ndarray) -> None:
        """Append sampled edges ``(src, dst_i)`` to the instance sample."""
        dst = np.asarray(dst, dtype=np.int64).reshape(-1)
        if dst.size == 0:
            return
        src_arr = np.ascontiguousarray(
            np.broadcast_to(np.asarray(src, dtype=np.int64), dst.shape)
        )
        self._src.append(src_arr)
        self._dst.append(dst)
        self._num_edges += int(dst.size)

    def sampled_edges(self) -> np.ndarray:
        """Sampled edges as an ``(n, 2)`` array in sampling order."""
        if not self._src:
            return np.empty((0, 2), dtype=np.int64)
        return np.column_stack([np.concatenate(self._src),
                                np.concatenate(self._dst)])

    def sampled_vertices(self) -> np.ndarray:
        """Distinct vertices appearing in the sample (sources, targets, seeds)."""
        edges = self.sampled_edges()
        return np.unique(np.concatenate([self.frontier_pool, edges.ravel()]))

    def mark_visited(self, vertices: np.ndarray) -> None:
        """Add vertices to the visited set."""
        self.visited.update(int(v) for v in np.asarray(vertices).reshape(-1))

    def unvisited(self, vertices: np.ndarray) -> np.ndarray:
        """Subset of ``vertices`` not yet in the visited set (order preserved)."""
        vertices = np.asarray(vertices, dtype=np.int64).reshape(-1)
        mask = np.fromiter((int(v) not in self.visited for v in vertices), dtype=bool,
                           count=vertices.size)
        return vertices[mask]

    def set_pool(self, vertices: np.ndarray) -> None:
        """Replace the frontier pool."""
        self.frontier_pool = np.asarray(vertices, dtype=np.int64).reshape(-1)

    def __repr__(self) -> str:
        return (
            f"InstanceState(id={self.instance_id}, pool={self.pool_size}, "
            f"edges={self.num_sampled_edges}, depth={self.depth}, finished={self.finished})"
        )


def make_instances(
    seeds: Sequence[int] | Sequence[Sequence[int]] | np.ndarray,
    *,
    num_instances: Optional[int] = None,
) -> List[InstanceState]:
    """Create instance states from seed vertices.

    ``seeds`` may be a flat sequence (one seed per instance) or a sequence of
    sequences (multiple seeds per instance, e.g. multi-dimensional random
    walk).  When ``num_instances`` is given and a single flat seed list is
    provided, seeds are reused round-robin to reach the requested count.
    """
    from repro.planner.errors import SeedValidationError

    if isinstance(seeds, np.ndarray) and seeds.ndim == 1:
        seeds = seeds.tolist()
    seeds = list(seeds)
    if not seeds:
        raise SeedValidationError("at least one seed is required")
    nested = isinstance(seeds[0], (list, tuple, np.ndarray))
    if num_instances is not None:
        if nested:
            if len(seeds) < num_instances:
                reps = int(np.ceil(num_instances / len(seeds)))
                seeds = (seeds * reps)[:num_instances]
            else:
                seeds = seeds[:num_instances]
        else:
            reps = int(np.ceil(num_instances / len(seeds)))
            seeds = (seeds * reps)[:num_instances]
    instances = []
    for i, seed in enumerate(seeds):
        pool = np.asarray(seed if nested else [seed], dtype=np.int64)
        instances.append(InstanceState(instance_id=i, frontier_pool=pool))
    return instances
