"""The fused walk kernel: every depth step of every walker as flat arrays.

:class:`CompiledWalkKernel` is what the :mod:`repro.compiled` tier emits for
walk-shaped plans (``FrontierSize = 0``, with-replacement, ``NEXT_LAYER``,
default accept/update hooks, a recognised bias kind).  Where the interpreted
:class:`~repro.engine.step.BatchedStepEngine` re-dispatches program hooks,
materialises a :class:`~repro.api.bias.SegmentedEdgePool` and walks a Python
loop over allocated segments every step, the compiled kernel keeps the whole
fleet of walkers in flat ndarrays across depths and defers *all* per-instance
work (edge recording, iteration counts, state write-back) to one finalize
pass after the last depth.

Specialisations, by plan-proved properties:

* ``kind="uniform"`` (SimpleRandomWalk / DeepWalk) -- biases are known to be
  all-ones, so the kernel never materialises neighbor pools or bias arrays:
  the CTPS over ones has the closed form ``F[b] = b / n``, the segmented scan
  collapses to nothing, and SELECT becomes a direct local binary search of
  each draw against ``(mid + 1) / n`` -- bitwise the probes the interpreted
  :meth:`~repro.selection.segmented.SegmentedCTPS.search` computes on the
  ones-prefix.  The per-draw loop optionally runs in the numba backend.
* ``kind="weight_or_degree"`` (BiasedRandomWalk) -- the per-vertex CTPS
  prefixes depend only on the graph, so they come from the per-graph
  structure cache (:mod:`repro.compiled.structures`): the kernel never
  materialises neighbor pools or bias arrays, charges the closed forms of
  the scan/normalisation it skipped, and binary-searches the cached
  graph-wide prefix directly (optionally in the numba backend).
* ``kind="node2vec"`` (Node2Vec) -- a transition's bias vector depends only
  on the traversed edge ``prev -> vertex`` (given ``(p, q)``), so the
  structure cache keeps a per-edge table of scanned CTPS prefix rows
  (:class:`~repro.compiled.structures.Node2VecPrefixTable`): cache hits
  skip pool materialisation, the bias formula *and* the segmented scan
  entirely, misses build their rows once with the same stamp-loop formula
  and scan the interpreted hook runs, and every draw binary-searches the
  cached rows with probes bitwise equal to the per-step CTPS.

**Bit-compatibility contract.**  The kernel draws the same ``(instance,
depth, slot, warp, lane)`` RNG keys, advances the engine's warp cursors in
the same order, and charges every cost-model counter exactly as the
interpreted path charges it (the uniform specialisation charges the closed
forms of the scan/normalise/search work it skipped).  Samples, iteration
counts, per-kernel cost records and warp-task counts are all identical; the
compiled axis of ``tests/integration/test_cross_route_matrix.py`` and
``tests/compiled/test_walk_kernel.py`` hold it to that.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.api.instance import InstanceState
from repro.gpusim.costmodel import CostModel
from repro.gpusim.kernel import KernelLaunch
from repro.selection.segmented import (
    _ceil_log2,
    concat_aranges,
    segment_positive_counts,
    segmented_kogge_stone_inclusive,
    segmented_warp_select,
    take_segments,
)
from repro.telemetry import profiler as _profiler
from repro.telemetry import trace as _trace

__all__ = ["CompiledWalkKernel", "prefix_local_search", "uniform_local_search"]

_EMPTY = np.empty(0, dtype=np.int64)


def uniform_local_search(rs: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Binary-search each draw against the closed-form uniform CTPS.

    For all-ones biases the unnormalised prefix of segment ``k`` is exactly
    ``[1, 2, ..., n_k]`` (the segmented scan's integer fast path), so probe
    ``b`` of :meth:`SegmentedCTPS.search` is ``float64(b + 1) / float64(n)``.
    This computes the same probes from ``lengths`` alone -- no prefix array,
    no segment offsets -- and therefore returns bit-identical local indices.
    """
    lo = np.zeros(rs.size, dtype=np.int64)
    hi = lengths - 1
    nf = lengths.astype(np.float64)
    active = lo < hi
    while np.any(active):
        mid = (lo + hi) >> 1
        probe = (mid + 1).astype(np.float64) / nf
        go_right = active & (probe <= rs)
        stay = active & ~go_right
        lo[go_right] = mid[go_right] + 1
        hi[stay] = mid[stay]
        active = lo < hi
    return lo


def prefix_local_search(
    prefix: np.ndarray,
    base: np.ndarray,
    lengths: np.ndarray,
    totals: np.ndarray,
    rs: np.ndarray,
) -> np.ndarray:
    """Binary-search each draw against a cached unnormalised prefix row.

    Operation-for-operation :meth:`SegmentedCTPS.search` with explicit
    per-draw base offsets into one flat buffer: probe ``prefix[mid] /
    total`` against the draw, identical float ops, so the local indices
    are bitwise those the per-step CTPS over the same rows would return.
    """
    rs = np.asarray(rs, dtype=np.float64)
    if rs.size and (float(rs.min()) < 0.0 or float(rs.max()) >= 1.0):
        raise ValueError("random numbers for CTPS search must lie in [0, 1)")
    lo = np.asarray(base, dtype=np.int64).copy()
    hi = lo + lengths - 1
    active = lo < hi
    while np.any(active):
        mid = (lo + hi) >> 1
        probe = prefix[np.where(active, mid, 0)] / totals
        go_right = active & (probe <= rs)
        stay = active & ~go_right
        lo[go_right] = mid[go_right] + 1
        hi[stay] = mid[stay]
        active = lo < hi
    return lo - base


class CompiledWalkKernel:
    """Plan-specialised fused per-depth callable for walk-shaped plans.

    Instantiated by :func:`repro.compiled.compiler.instantiate_kernel` around
    a live :class:`~repro.engine.step.BatchedStepEngine` (whose RNG and warp
    cursors it shares, so interleaving compiled and interpreted runs on one
    sampler keeps a single warp-id stream).  :meth:`run` replaces the
    executor's ``_depth_loop`` wholesale.
    """

    def __init__(self, engine, *, kind: str, backend: str):
        if kind not in ("uniform", "weight_or_degree", "node2vec"):
            raise ValueError(f"unknown compiled bias kind {kind!r}")
        if backend not in ("numpy", "numba"):
            raise ValueError(f"unknown compiled backend {backend!r}")
        self.engine = engine
        self.graph = engine.graph
        self.program = engine.program
        self.config = engine.config
        self.rng = engine.rng
        self.kind = kind
        self.backend = backend
        self._numba_select = None
        self._numba_prefix_search = None
        if backend == "numba":
            from repro.compiled.numba_backend import (
                get_prefix_search,
                get_uniform_select,
            )

            self._numba_select = get_uniform_select()
            if kind in ("weight_or_degree", "node2vec"):
                self._numba_prefix_search = get_prefix_search()
        self._structures = None
        self._n2v_table = None
        if kind in ("weight_or_degree", "node2vec"):
            from repro.compiled.structures import get_structures

            # Both biased kinds lean on the weight/degree structures: the
            # flat CTPS answers first-order selection, and its positivity
            # counts (bias > 0 iff weight > 0) equal node2vec's, whose
            # positive scale factors never zero a bias.
            self._structures = get_structures(self.graph, "weight_or_degree")
            if kind == "node2vec":
                nv = int(self.graph.num_vertices)
                if nv * nv < 2**63:  # (prev, vertex) packs into one int64 key
                    self._n2v_table = self._structures.node2vec_table(
                        self.program.p, self.program.q
                    )

    # ------------------------------------------------------------------ #
    def run(
        self, instances: Sequence[InstanceState], sink
    ) -> Tuple[List[KernelLaunch], CostModel]:
        """Advance ``instances`` through every depth; return (kernels, cost).

        Mutates the instances (pools, depth, prev_vertex, finished, recorded
        edges), appends iteration counts to ``sink`` (plain list or grouped
        sink) and advances the engine's warp cursors -- the same observable
        effects as the interpreted depth loop, produced in bulk.
        """
        with _trace.span(
            "compiled_run",
            kind=self.kind,
            backend=self.backend,
            instances=len(instances),
        ):
            return self._run(instances, sink)

    def _run(
        self, instances: Sequence[InstanceState], sink
    ) -> Tuple[List[KernelLaunch], CostModel]:
        cfg = self.config
        engine = self.engine
        graph = self.graph
        num = len(instances)
        kernels: List[KernelLaunch] = []
        total = CostModel()
        if num == 0 or cfg.depth <= 0:
            return kernels, total

        ids = np.array([inst.instance_id for inst in instances], dtype=np.int64)
        prevs = np.array([inst.prev_vertex for inst in instances], dtype=np.int64)
        finished = np.array(
            [inst.finished or inst.pool_size == 0 for inst in instances], dtype=bool
        )
        pool_counts = np.array(
            [0 if finished[r] else inst.pool_size for r, inst in enumerate(instances)],
            dtype=np.int64,
        )
        live_pools = [
            inst.frontier_pool for r, inst in enumerate(instances) if not finished[r]
        ]
        pool_flat = np.concatenate(live_pools) if live_pools else _EMPTY
        entry_finished = finished.copy()

        stepped_any = np.zeros(num, dtype=bool)
        last_depth = np.zeros(num, dtype=np.int64)
        iter_totals = np.zeros(num, dtype=np.int64)
        edge_owner_parts: List[np.ndarray] = []
        edge_src_parts: List[np.ndarray] = []
        edge_dst_parts: List[np.ndarray] = []
        ns = int(cfg.neighbor_size)

        grouped = engine._warp_group_of is not None
        group_of_rank = None
        if grouped:
            group_of_rank = np.array(
                [engine._warp_group_of[id(inst)] for inst in instances],
                dtype=np.int64,
            )

        for depth in range(cfg.depth):
            act = np.nonzero(~finished)[0]
            if act.size == 0:
                break
            prof = _profiler.clock(depth)
            step_cost = CostModel()
            counts_a = pool_counts[act]
            seg_owner = np.repeat(act, counts_a)
            seg_vertices = pool_flat
            K = int(seg_vertices.size)
            lengths = graph.degrees[seg_vertices]
            # GATHER: the row-descriptor + edge-stream traffic of the full
            # pool gather, charged whether or not the neighbors materialise.
            step_cost.charge_global_bytes(16 * int(lengths.sum()) + 16 * K)
            seg_slots = concat_aranges(counts_a)
            starts = graph.row_ptr[seg_vertices]

            neighbors = offsets = biases = None
            if self.kind == "uniform":
                positive = lengths
                prof.lap("gather")
            elif self.kind == "weight_or_degree" or self._n2v_table is not None:
                # Structure reuse: cached structures answer every bias
                # question, so the pool never materialises.  The graph
                # constructor already validated the weights (finite, non-
                # negative) and node2vec's scale factors are positive, which
                # is what the per-step validation checks.
                positive = self._structures.positive_counts[seg_vertices]
                prof.lap("gather")
            else:
                offsets = np.zeros(K + 1, dtype=np.int64)
                np.cumsum(lengths, out=offsets[1:])
                total_pool = int(offsets[-1])
                flat_idx = (
                    np.repeat(starts - offsets[:-1], lengths)
                    + np.arange(total_pool, dtype=np.int64)
                )
                neighbors = graph.col_idx[flat_idx]
                prof.lap("gather")
                biases = self._compute_biases(
                    neighbors, flat_idx, lengths, offsets, seg_owner, prevs
                )
                if np.any(biases < 0) or not np.all(np.isfinite(biases)):
                    raise ValueError(
                        "edge_bias must return finite, non-negative biases"
                    )
                positive = segment_positive_counts(biases, offsets)
                prof.lap("bias")

            alloc = (lengths > 0) & (positive > 0)
            warp_full = self._alloc_warps(alloc, seg_owner, group_of_rank)
            allocated = np.nonzero(alloc)[0]
            tasks = int(allocated.size)

            if tasks:
                if self.kind == "uniform":
                    idx = self._uniform_select(
                        allocated, lengths, ids, seg_owner, seg_slots,
                        warp_full, depth, step_cost,
                    )
                    dst = graph.col_idx[np.repeat(starts[allocated], ns) + idx]
                elif self.kind == "weight_or_degree":
                    idx = self._cached_biased_select(
                        allocated, seg_vertices, lengths, ids, seg_owner,
                        seg_slots, warp_full, depth, step_cost,
                    )
                    dst = graph.col_idx[np.repeat(starts[allocated], ns) + idx]
                elif self._n2v_table is not None:
                    idx = self._node2vec_select(
                        allocated, seg_vertices, lengths, ids, seg_owner,
                        seg_slots, warp_full, depth, prevs, step_cost, prof,
                    )
                    dst = graph.col_idx[np.repeat(starts[allocated], ns) + idx]
                else:
                    if tasks == K:
                        sub_biases, sub_offsets = biases, offsets
                    else:
                        sub_biases, sub_offsets = take_segments(
                            biases, offsets, allocated
                        )
                    selection = segmented_warp_select(
                        sub_biases,
                        sub_offsets,
                        np.full(tasks, ns, dtype=np.int64),
                        self.rng,
                        [ids[seg_owner[allocated]],
                         np.full(tasks, depth, dtype=np.int64),
                         seg_slots[allocated] + 1,
                         warp_full[allocated]],
                        with_replacement=True,
                        strategy=cfg.strategy,
                        detector=cfg.detector,
                        cost=step_cost,
                        validate=False,  # validated over the whole pool above
                        positive_counts=positive[allocated],
                    )
                    dst = neighbors[
                        np.repeat(offsets[:-1][allocated], ns) + selection.indices
                    ]
                draws = tasks * ns
                step_cost.sampled_edges += draws
                owners_a = seg_owner[allocated]
                iter_totals += np.bincount(owners_a, minlength=num) * ns
                edge_owner_parts.append(np.repeat(owners_a, ns))
                edge_src_parts.append(np.repeat(seg_vertices[allocated], ns))
                edge_dst_parts.append(dst)
                new_counts = np.bincount(owners_a, minlength=num) * ns
            else:
                dst = _EMPTY
                new_counts = np.zeros(num, dtype=np.int64)
            prof.lap("select")

            # Walk bookkeeping: prev_vertex tracks single-vertex frontiers,
            # updated from the *pre-step* pool (biases at depth d + 1 see it).
            single = counts_a == 1
            if np.any(single):
                block_starts = np.zeros(act.size, dtype=np.int64)
                np.cumsum(counts_a[:-1], out=block_starts[1:])
                prevs[act[single]] = pool_flat[block_starts[single]]

            pool_flat = dst
            pool_counts = new_counts
            last_depth[act] = depth + 1
            stepped_any[act] = True
            finished[act] = new_counts[act] == 0
            step_cost.kernel_launches += 1
            kernels.append(
                KernelLaunch(
                    name=f"kernel:depth{depth}",
                    cost=step_cost,
                    num_warp_tasks=max(tasks, 1),
                )
            )
            total.merge(step_cost)
            prof.lap("update")

        prof = _profiler.clock(-1)
        self._finalize(
            instances, sink, prevs, finished, entry_finished, stepped_any,
            last_depth, iter_totals, pool_flat, pool_counts,
            edge_owner_parts, edge_src_parts, edge_dst_parts,
        )
        prof.lap("update")
        return kernels, total

    # ------------------------------------------------------------------ #
    def _alloc_warps(self, alloc, seg_owner, group_of_rank) -> np.ndarray:
        """Warp ids for allocated segments, advancing the engine's cursors.

        Mirrors :meth:`BatchedStepEngine._alloc_warp_block` -- sequential in
        segment order within the global sequence, or within each warp group's
        own cursor when coalescing -- so interpreted and compiled runs draw
        from one continuous warp-id stream.
        """
        engine = self.engine
        warp_full = np.full(alloc.size, -1, dtype=np.int64)
        if group_of_rank is None:
            num_alloc = int(alloc.sum())
            warp_full[alloc] = engine.warp_counter + np.arange(
                num_alloc, dtype=np.int64
            )
            engine.warp_counter += num_alloc
            return warp_full
        groups_seg = group_of_rank[seg_owner]
        for group in np.unique(groups_seg[alloc]):
            members = alloc & (groups_seg == group)
            count = int(members.sum())
            warp_full[members] = engine._group_warp_cursors[group] + np.arange(
                count, dtype=np.int64
            )
            engine._group_warp_cursors[group] += count
        return warp_full

    # ------------------------------------------------------------------ #
    def _uniform_select(
        self, allocated, lengths, ids, seg_owner, seg_slots, warp_full, depth,
        cost,
    ) -> np.ndarray:
        """Closed-form SELECT for all-ones biases (one draw block per depth).

        Charges the exact counters the interpreted path accumulates while
        building and searching the ones-CTPS -- segmented scan, CTPS
        normalisation, draw accounting, per-draw binary-search steps, and the
        with-replacement warp wrapper -- then draws and searches directly.
        """
        ns = int(self.config.neighbor_size)
        num_alloc = int(allocated.size)
        len_a = lengths[allocated]
        # Segmented Kogge-Stone scan over the allocated ones-segments.
        steps = _ceil_log2(len_a)
        chunks = np.maximum(1, (len_a + 31) // 32)
        cost.prefix_sum_steps += int((steps * chunks).sum())
        cost.warp_steps += int(steps.sum())
        cost.lane_ops += int((steps * np.minimum(len_a, 32)).sum())
        cost.charge_global_bytes(int(len_a.sum()) * 8)
        # CTPS normalisation: one warp step per segment.
        cost.warp_steps += num_alloc
        cost.lane_ops += int(np.minimum(len_a, 32).sum())
        # Draw accounting (segmented ITS).
        draws = num_alloc * ns
        cost.rng_draws += draws
        cost.selection_attempts += draws
        # Per-draw coordinates: (instance, depth, slot + 1, warp, lane).
        owners = seg_owner[allocated]
        coord_inst = np.repeat(ids[owners], ns)
        coord_slot = np.repeat(seg_slots[allocated] + 1, ns)
        coord_warp = np.repeat(warp_full[allocated], ns)
        lanes = np.tile(np.arange(ns, dtype=np.int64), num_alloc)
        n_draw = np.repeat(len_a, ns)
        if self._numba_select is not None:
            idx = self._numba_select(
                np.uint64(self.rng.seed),
                coord_inst.astype(np.uint64),
                np.full(draws, depth, dtype=np.uint64),
                coord_slot.astype(np.uint64),
                coord_warp.astype(np.uint64),
                lanes.astype(np.uint64),
                n_draw,
            )
        else:
            rs = np.atleast_1d(
                self.rng.uniform(coord_inst, depth, coord_slot, coord_warp, lanes)
            )
            idx = uniform_local_search(rs, n_draw)
        # Binary-search charges (one per draw, as SegmentedCTPS.search).
        search_steps = int(np.maximum(1, _ceil_log2(n_draw + 1)).sum())
        cost.binary_search_steps += search_steps
        cost.charge_global_bytes(search_steps * 8)
        # With-replacement warp wrapper: one lock-step instruction per warp.
        cost.warp_steps += num_alloc
        cost.lane_ops += min(ns, 32) * num_alloc
        return idx

    # ------------------------------------------------------------------ #
    def _cached_biased_select(
        self, allocated, seg_vertices, lengths, ids, seg_owner, seg_slots,
        warp_full, depth, cost,
    ) -> np.ndarray:
        """Structure-reuse SELECT for weight/degree biases.

        The interpreted path re-scans every allocated pool's biases into a
        fresh :class:`SegmentedCTPS` each depth step; here the per-graph
        cached prefix answers the same binary searches, so the kernel only
        applies the *charges* of the scan and normalisation it skipped
        (identical closed forms) and then searches the cached prefix with
        the same draws -- bit-identical indices at O(draws) work per step.
        """
        ns = int(self.config.neighbor_size)
        num_alloc = int(allocated.size)
        len_a = lengths[allocated]
        # Segmented Kogge-Stone scan over the allocated bias segments.
        steps = _ceil_log2(len_a)
        chunks = np.maximum(1, (len_a + 31) // 32)
        cost.prefix_sum_steps += int((steps * chunks).sum())
        cost.warp_steps += int(steps.sum())
        cost.lane_ops += int((steps * np.minimum(len_a, 32)).sum())
        cost.charge_global_bytes(int(len_a.sum()) * 8)
        # CTPS normalisation: one warp step per segment.
        cost.warp_steps += num_alloc
        cost.lane_ops += int(np.minimum(len_a, 32).sum())
        # Draw accounting (segmented ITS).
        draws = num_alloc * ns
        cost.rng_draws += draws
        cost.selection_attempts += draws
        # Per-draw coordinates: (instance, depth, slot + 1, warp, lane).
        owners = seg_owner[allocated]
        coord_inst = np.repeat(ids[owners], ns)
        coord_slot = np.repeat(seg_slots[allocated] + 1, ns)
        coord_warp = np.repeat(warp_full[allocated], ns)
        lanes = np.tile(np.arange(ns, dtype=np.int64), num_alloc)
        ctps = self._structures.ctps
        verts = np.repeat(seg_vertices[allocated], ns)
        if self._numba_prefix_search is not None:
            n_draw = np.repeat(len_a, ns)
            idx = self._numba_prefix_search(
                np.uint64(self.rng.seed),
                coord_inst.astype(np.uint64),
                np.full(draws, depth, dtype=np.uint64),
                coord_slot.astype(np.uint64),
                coord_warp.astype(np.uint64),
                lanes.astype(np.uint64),
                self.graph.row_ptr[verts],
                n_draw,
                ctps.prefix,
                ctps.totals[verts],
            )
            # Binary-search charges (as SegmentedCTPS.search applies them).
            search_steps = int(np.maximum(1, _ceil_log2(n_draw + 1)).sum())
            cost.binary_search_steps += search_steps
            cost.charge_global_bytes(search_steps * 8)
        else:
            rs = np.atleast_1d(
                self.rng.uniform(coord_inst, depth, coord_slot, coord_warp, lanes)
            )
            idx = ctps.search(rs, verts, cost)
        # With-replacement warp wrapper: one lock-step instruction per warp.
        cost.warp_steps += num_alloc
        cost.lane_ops += min(ns, 32) * num_alloc
        return idx

    # ------------------------------------------------------------------ #
    def _node2vec_select(
        self, allocated, seg_vertices, lengths, ids, seg_owner, seg_slots,
        warp_full, depth, prevs, cost, prof,
    ) -> np.ndarray:
        """Structure-reuse SELECT for second-order (node2vec) biases.

        A transition's bias vector depends only on the traversed edge
        ``prev -> vertex`` (and ``(p, q)``), so each vector's scanned CTPS
        prefix is built at most once -- by the exact stamp-loop formula and
        segmented scan the interpreted hook runs -- and cached in the
        per-graph :class:`Node2VecPrefixTable`.  Hits cost a dict lookup;
        only misses materialise their pools.  Either way the step charges
        the closed forms of the full gather/scan/normalise work (identical
        to the interpreted path) and searches with the same draws.
        """
        ns = int(self.config.neighbor_size)
        num_alloc = int(allocated.size)
        len_a = lengths[allocated]
        # Segmented Kogge-Stone scan over the allocated bias segments.
        steps = _ceil_log2(len_a)
        chunks = np.maximum(1, (len_a + 31) // 32)
        cost.prefix_sum_steps += int((steps * chunks).sum())
        cost.warp_steps += int(steps.sum())
        cost.lane_ops += int((steps * np.minimum(len_a, 32)).sum())
        cost.charge_global_bytes(int(len_a.sum()) * 8)
        # CTPS normalisation: one warp step per segment.
        cost.warp_steps += num_alloc
        cost.lane_ops += int(np.minimum(len_a, 32).sum())
        # Draw accounting (segmented ITS).
        draws = num_alloc * ns
        cost.rng_draws += draws
        cost.selection_attempts += draws
        # Resolve the cached prefix row of each walker's traversed edge.
        table = self._n2v_table
        verts = seg_vertices[allocated]
        pr = prevs[seg_owner[allocated]]
        nv = np.int64(self.graph.num_vertices)
        keys = np.where(pr >= 0, pr * nv + verts, -(verts + np.int64(1)))
        row_off = np.empty(num_alloc, dtype=np.int64)
        row_tot = np.empty(num_alloc, dtype=np.float64)
        lookup = table.table.get
        miss: List[int] = []
        for i, key in enumerate(keys.tolist()):
            entry = lookup(key)
            if entry is None:
                miss.append(i)
            else:
                row_off[i] = entry[0]
                row_tot[i] = entry[1]
        table.hits += num_alloc - len(miss)
        table.misses += len(miss)
        prof.lap("structure_hit")
        if miss:
            m = np.asarray(miss, dtype=np.int64)
            pref, moff, tots = self._build_n2v_rows(verts[m], pr[m], len_a[m])
            row_off[m] = table.append(pref, moff, keys[m], tots)
            row_tot[m] = tots
            prof.lap("bias_build")
        # Per-draw coordinates: (instance, depth, slot + 1, warp, lane).
        owners = seg_owner[allocated]
        coord_inst = np.repeat(ids[owners], ns)
        coord_slot = np.repeat(seg_slots[allocated] + 1, ns)
        coord_warp = np.repeat(warp_full[allocated], ns)
        lanes = np.tile(np.arange(ns, dtype=np.int64), num_alloc)
        n_draw = np.repeat(len_a, ns)
        if self._numba_prefix_search is not None:
            idx = self._numba_prefix_search(
                np.uint64(self.rng.seed),
                coord_inst.astype(np.uint64),
                np.full(draws, depth, dtype=np.uint64),
                coord_slot.astype(np.uint64),
                coord_warp.astype(np.uint64),
                lanes.astype(np.uint64),
                np.repeat(row_off, ns),
                n_draw,
                table.buffer,
                np.repeat(row_tot, ns),
            )
        else:
            rs = np.atleast_1d(
                self.rng.uniform(coord_inst, depth, coord_slot, coord_warp, lanes)
            )
            idx = prefix_local_search(
                table.buffer,
                np.repeat(row_off, ns),
                n_draw,
                np.repeat(row_tot, ns),
                rs,
            )
        # Binary-search charges (as SegmentedCTPS.search applies them).
        search_steps = int(np.maximum(1, _ceil_log2(n_draw + 1)).sum())
        cost.binary_search_steps += search_steps
        cost.charge_global_bytes(search_steps * 8)
        # With-replacement warp wrapper: one lock-step instruction per warp.
        cost.warp_steps += num_alloc
        cost.lane_ops += min(ns, 32) * num_alloc
        return idx

    def _build_n2v_rows(self, mv, mp, ml):
        """Materialise, bias and scan the table-miss segments only.

        Mirrors :meth:`Node2Vec.edge_bias_batch` restricted to the missing
        ``prev -> vertex`` pairs -- elementwise bias arithmetic and the
        per-segment scan are batch-independent, so the rows are bitwise
        what a whole-pool rebuild would produce.
        """
        graph = self.graph
        program = self.program
        moff = np.zeros(mv.size + 1, dtype=np.int64)
        np.cumsum(ml, out=moff[1:])
        total = int(moff[-1])
        flat = (
            np.repeat(graph.row_ptr[mv] - moff[:-1], ml)
            + np.arange(total, dtype=np.int64)
        )
        nbrs = graph.col_idx[flat]
        weights = (
            np.asarray(graph.weights[flat], dtype=np.float64)
            if graph.weights is not None
            else np.ones(total, dtype=np.float64)
        )
        prev_of_edge = np.repeat(mp, ml)
        bias = weights / program.q
        is_prev_neighbor = np.zeros(total, dtype=bool)
        stamps = np.full(graph.num_vertices, -1, dtype=np.int64)
        for k in np.nonzero(mp >= 0)[0]:
            lo, hi = int(moff[k]), int(moff[k + 1])
            stamps[graph.neighbors(int(mp[k]))] = k
            is_prev_neighbor[lo:hi] = stamps[nbrs[lo:hi]] == k
        is_prev = (nbrs == prev_of_edge) & (prev_of_edge >= 0)
        bias[is_prev_neighbor] = weights[is_prev_neighbor]
        bias[is_prev] = weights[is_prev] / program.p
        first = prev_of_edge < 0
        bias[first] = weights[first]
        pref = segmented_kogge_stone_inclusive(bias, moff)
        return pref, moff, pref[moff[1:] - 1]

    # ------------------------------------------------------------------ #
    def _compute_biases(
        self, neighbors, flat_idx, lengths, offsets, seg_owner, prevs
    ) -> np.ndarray:
        """Inlined bias formula for the non-uniform kinds (whole pool)."""
        graph = self.graph
        if self.kind == "weight_or_degree":
            if graph.is_weighted:
                return np.asarray(graph.weights[flat_idx], dtype=np.float64)
            return graph.degrees[neighbors].astype(np.float64) + 1.0
        # node2vec: second-order bias with the prev-neighbor membership test
        # answered by the cached sorted edge keys in one vectorised binary
        # search -- the same booleans the per-segment stamp loop computes,
        # then operation-for-operation the Node2Vec.edge_bias_batch formula.
        program = self.program
        weights = (
            np.asarray(graph.weights[flat_idx], dtype=np.float64)
            if graph.weights is not None
            else np.ones(neighbors.size, dtype=np.float64)
        )
        prevs_seg = prevs[seg_owner]
        prev_of_edge = np.repeat(prevs_seg, lengths)
        bias = weights / program.q
        is_prev_neighbor = np.zeros(neighbors.size, dtype=bool)
        keys = (
            self._structures.sorted_edge_keys
            if self._structures is not None
            else None
        )
        valid = prev_of_edge >= 0
        if keys is not None and keys.size and np.any(valid):
            probe = (
                prev_of_edge[valid] * np.int64(graph.num_vertices)
                + neighbors[valid]
            )
            pos = np.minimum(np.searchsorted(keys, probe), keys.size - 1)
            is_prev_neighbor[valid] = keys[pos] == probe
        elif keys is None:
            # Key space overflowed int64: per-segment stamp-array fallback.
            stamps = np.full(graph.num_vertices, -1, dtype=np.int64)
            for k in np.nonzero(prevs_seg >= 0)[0]:
                lo, hi = int(offsets[k]), int(offsets[k + 1])
                stamps[graph.neighbors(int(prevs_seg[k]))] = k
                is_prev_neighbor[lo:hi] = stamps[neighbors[lo:hi]] == k
        is_prev = (neighbors == prev_of_edge) & (prev_of_edge >= 0)
        bias[is_prev_neighbor] = weights[is_prev_neighbor]
        bias[is_prev] = weights[is_prev] / program.p
        first = prev_of_edge < 0
        bias[first] = weights[first]
        return bias

    # ------------------------------------------------------------------ #
    def _finalize(
        self, instances, sink, prevs, finished, entry_finished, stepped_any,
        last_depth, iter_totals, pool_flat, pool_counts,
        edge_owner_parts, edge_src_parts, edge_dst_parts,
    ) -> None:
        """One deferred pass producing every per-instance observable effect."""
        num = len(instances)
        # Iteration counts: with-replacement selections always iterate once,
        # so only the per-owner totals matter (appended in rank order; within
        # a grouped sink's member list the values are indistinguishable).
        extend_for = getattr(sink, "extend_for", None)
        if extend_for is None:
            sink.extend([1] * int(iter_totals.sum()))
        else:
            for r in np.nonzero(iter_totals > 0)[0]:
                extend_for(
                    instances[r], np.ones(int(iter_totals[r]), dtype=np.int64)
                )
        # Edges: group the flat per-step draws by owner (stable, so each
        # owner's edges stay in step-then-segment-then-lane order -- the
        # exact order the interpreted UPDATE loop records them).
        if edge_owner_parts:
            all_owner = np.concatenate(edge_owner_parts)
            all_src = np.concatenate(edge_src_parts)
            all_dst = np.concatenate(edge_dst_parts)
            order = np.argsort(all_owner, kind="stable")
            all_owner = all_owner[order]
            all_src = all_src[order]
            all_dst = all_dst[order]
            per_rank = np.bincount(all_owner, minlength=num)
            bounds = np.zeros(num + 1, dtype=np.int64)
            np.cumsum(per_rank, out=bounds[1:])
            for r in np.nonzero(per_rank > 0)[0]:
                lo, hi = int(bounds[r]), int(bounds[r + 1])
                instances[r].record_edges(all_src[lo:hi], all_dst[lo:hi])
        # State write-back.
        pool_bounds = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(pool_counts, out=pool_bounds[1:])
        for r in range(num):
            inst = instances[r]
            if stepped_any[r]:
                lo, hi = int(pool_bounds[r]), int(pool_bounds[r + 1])
                inst.set_pool(pool_flat[lo:hi])
                inst.depth = int(last_depth[r])
                inst.prev_vertex = int(prevs[r])
                inst.finished = bool(finished[r])
            elif entry_finished[r]:
                # step_instances marks finished-at-entry instances on its
                # first call even though they never step.
                inst.finished = True
