"""The fused walk kernel: every depth step of every walker as flat arrays.

:class:`CompiledWalkKernel` is what the :mod:`repro.compiled` tier emits for
walk-shaped plans (``FrontierSize = 0``, with-replacement, ``NEXT_LAYER``,
default accept/update hooks, a recognised bias kind).  Where the interpreted
:class:`~repro.engine.step.BatchedStepEngine` re-dispatches program hooks,
materialises a :class:`~repro.api.bias.SegmentedEdgePool` and walks a Python
loop over allocated segments every step, the compiled kernel keeps the whole
fleet of walkers in flat ndarrays across depths and defers *all* per-instance
work (edge recording, iteration counts, state write-back) to one finalize
pass after the last depth.

Specialisations, by plan-proved properties:

* ``kind="uniform"`` (SimpleRandomWalk / DeepWalk) -- biases are known to be
  all-ones, so the kernel never materialises neighbor pools or bias arrays:
  the CTPS over ones has the closed form ``F[b] = b / n``, the segmented scan
  collapses to nothing, and SELECT becomes a direct local binary search of
  each draw against ``(mid + 1) / n`` -- bitwise the probes the interpreted
  :meth:`~repro.selection.segmented.SegmentedCTPS.search` computes on the
  ones-prefix.  The per-draw loop optionally runs in the numba backend.
* ``kind="weight_or_degree"`` (BiasedRandomWalk) and ``kind="node2vec"``
  (Node2Vec) -- the bias formula is inlined (no hook dispatch), then the
  selection reuses the segmented SELECT kernels verbatim, so non-uniform
  draws are identical by construction.

**Bit-compatibility contract.**  The kernel draws the same ``(instance,
depth, slot, warp, lane)`` RNG keys, advances the engine's warp cursors in
the same order, and charges every cost-model counter exactly as the
interpreted path charges it (the uniform specialisation charges the closed
forms of the scan/normalise/search work it skipped).  Samples, iteration
counts, per-kernel cost records and warp-task counts are all identical; the
compiled axis of ``tests/integration/test_cross_route_matrix.py`` and
``tests/compiled/test_walk_kernel.py`` hold it to that.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.api.instance import InstanceState
from repro.gpusim.costmodel import CostModel
from repro.gpusim.kernel import KernelLaunch
from repro.selection.segmented import (
    _ceil_log2,
    concat_aranges,
    segment_positive_counts,
    segmented_warp_select,
    take_segments,
)
from repro.telemetry import profiler as _profiler
from repro.telemetry import trace as _trace

__all__ = ["CompiledWalkKernel", "uniform_local_search"]

_EMPTY = np.empty(0, dtype=np.int64)


def uniform_local_search(rs: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Binary-search each draw against the closed-form uniform CTPS.

    For all-ones biases the unnormalised prefix of segment ``k`` is exactly
    ``[1, 2, ..., n_k]`` (the segmented scan's integer fast path), so probe
    ``b`` of :meth:`SegmentedCTPS.search` is ``float64(b + 1) / float64(n)``.
    This computes the same probes from ``lengths`` alone -- no prefix array,
    no segment offsets -- and therefore returns bit-identical local indices.
    """
    lo = np.zeros(rs.size, dtype=np.int64)
    hi = lengths - 1
    nf = lengths.astype(np.float64)
    active = lo < hi
    while np.any(active):
        mid = (lo + hi) >> 1
        probe = (mid + 1).astype(np.float64) / nf
        go_right = active & (probe <= rs)
        stay = active & ~go_right
        lo[go_right] = mid[go_right] + 1
        hi[stay] = mid[stay]
        active = lo < hi
    return lo


class CompiledWalkKernel:
    """Plan-specialised fused per-depth callable for walk-shaped plans.

    Instantiated by :func:`repro.compiled.compiler.instantiate_kernel` around
    a live :class:`~repro.engine.step.BatchedStepEngine` (whose RNG and warp
    cursors it shares, so interleaving compiled and interpreted runs on one
    sampler keeps a single warp-id stream).  :meth:`run` replaces the
    executor's ``_depth_loop`` wholesale.
    """

    def __init__(self, engine, *, kind: str, backend: str):
        if kind not in ("uniform", "weight_or_degree", "node2vec"):
            raise ValueError(f"unknown compiled bias kind {kind!r}")
        if backend not in ("numpy", "numba"):
            raise ValueError(f"unknown compiled backend {backend!r}")
        self.engine = engine
        self.graph = engine.graph
        self.program = engine.program
        self.config = engine.config
        self.rng = engine.rng
        self.kind = kind
        self.backend = backend
        self._numba_select = None
        if backend == "numba":
            from repro.compiled.numba_backend import get_uniform_select

            self._numba_select = get_uniform_select()

    # ------------------------------------------------------------------ #
    def run(
        self, instances: Sequence[InstanceState], sink
    ) -> Tuple[List[KernelLaunch], CostModel]:
        """Advance ``instances`` through every depth; return (kernels, cost).

        Mutates the instances (pools, depth, prev_vertex, finished, recorded
        edges), appends iteration counts to ``sink`` (plain list or grouped
        sink) and advances the engine's warp cursors -- the same observable
        effects as the interpreted depth loop, produced in bulk.
        """
        with _trace.span(
            "compiled_run",
            kind=self.kind,
            backend=self.backend,
            instances=len(instances),
        ):
            return self._run(instances, sink)

    def _run(
        self, instances: Sequence[InstanceState], sink
    ) -> Tuple[List[KernelLaunch], CostModel]:
        cfg = self.config
        engine = self.engine
        graph = self.graph
        num = len(instances)
        kernels: List[KernelLaunch] = []
        total = CostModel()
        if num == 0 or cfg.depth <= 0:
            return kernels, total

        ids = np.array([inst.instance_id for inst in instances], dtype=np.int64)
        prevs = np.array([inst.prev_vertex for inst in instances], dtype=np.int64)
        finished = np.array(
            [inst.finished or inst.pool_size == 0 for inst in instances], dtype=bool
        )
        pool_counts = np.array(
            [0 if finished[r] else inst.pool_size for r, inst in enumerate(instances)],
            dtype=np.int64,
        )
        live_pools = [
            inst.frontier_pool for r, inst in enumerate(instances) if not finished[r]
        ]
        pool_flat = np.concatenate(live_pools) if live_pools else _EMPTY
        entry_finished = finished.copy()

        stepped_any = np.zeros(num, dtype=bool)
        last_depth = np.zeros(num, dtype=np.int64)
        iter_totals = np.zeros(num, dtype=np.int64)
        edge_owner_parts: List[np.ndarray] = []
        edge_src_parts: List[np.ndarray] = []
        edge_dst_parts: List[np.ndarray] = []
        ns = int(cfg.neighbor_size)

        grouped = engine._warp_group_of is not None
        group_of_rank = None
        if grouped:
            group_of_rank = np.array(
                [engine._warp_group_of[id(inst)] for inst in instances],
                dtype=np.int64,
            )

        for depth in range(cfg.depth):
            act = np.nonzero(~finished)[0]
            if act.size == 0:
                break
            prof = _profiler.clock(depth)
            step_cost = CostModel()
            counts_a = pool_counts[act]
            seg_owner = np.repeat(act, counts_a)
            seg_vertices = pool_flat
            K = int(seg_vertices.size)
            lengths = graph.degrees[seg_vertices]
            # GATHER: the row-descriptor + edge-stream traffic of the full
            # pool gather, charged whether or not the neighbors materialise.
            step_cost.charge_global_bytes(16 * int(lengths.sum()) + 16 * K)
            seg_slots = concat_aranges(counts_a)
            starts = graph.row_ptr[seg_vertices]

            neighbors = offsets = biases = None
            if self.kind == "uniform":
                positive = lengths
                prof.lap("gather")
            else:
                offsets = np.zeros(K + 1, dtype=np.int64)
                np.cumsum(lengths, out=offsets[1:])
                total_pool = int(offsets[-1])
                flat_idx = (
                    np.repeat(starts - offsets[:-1], lengths)
                    + np.arange(total_pool, dtype=np.int64)
                )
                neighbors = graph.col_idx[flat_idx]
                prof.lap("gather")
                biases = self._compute_biases(
                    neighbors, flat_idx, lengths, offsets, seg_owner, prevs
                )
                if np.any(biases < 0) or not np.all(np.isfinite(biases)):
                    raise ValueError(
                        "edge_bias must return finite, non-negative biases"
                    )
                positive = segment_positive_counts(biases, offsets)
                prof.lap("bias")

            alloc = (lengths > 0) & (positive > 0)
            warp_full = self._alloc_warps(alloc, seg_owner, group_of_rank)
            allocated = np.nonzero(alloc)[0]
            tasks = int(allocated.size)

            if tasks:
                if self.kind == "uniform":
                    idx = self._uniform_select(
                        allocated, lengths, ids, seg_owner, seg_slots,
                        warp_full, depth, step_cost,
                    )
                    dst = graph.col_idx[np.repeat(starts[allocated], ns) + idx]
                else:
                    if tasks == K:
                        sub_biases, sub_offsets = biases, offsets
                    else:
                        sub_biases, sub_offsets = take_segments(
                            biases, offsets, allocated
                        )
                    selection = segmented_warp_select(
                        sub_biases,
                        sub_offsets,
                        np.full(tasks, ns, dtype=np.int64),
                        self.rng,
                        [ids[seg_owner[allocated]],
                         np.full(tasks, depth, dtype=np.int64),
                         seg_slots[allocated] + 1,
                         warp_full[allocated]],
                        with_replacement=True,
                        strategy=cfg.strategy,
                        detector=cfg.detector,
                        cost=step_cost,
                        validate=False,  # validated over the whole pool above
                        positive_counts=positive[allocated],
                    )
                    dst = neighbors[
                        np.repeat(offsets[:-1][allocated], ns) + selection.indices
                    ]
                draws = tasks * ns
                step_cost.sampled_edges += draws
                owners_a = seg_owner[allocated]
                iter_totals += np.bincount(owners_a, minlength=num) * ns
                edge_owner_parts.append(np.repeat(owners_a, ns))
                edge_src_parts.append(np.repeat(seg_vertices[allocated], ns))
                edge_dst_parts.append(dst)
                new_counts = np.bincount(owners_a, minlength=num) * ns
            else:
                dst = _EMPTY
                new_counts = np.zeros(num, dtype=np.int64)
            prof.lap("select")

            # Walk bookkeeping: prev_vertex tracks single-vertex frontiers,
            # updated from the *pre-step* pool (biases at depth d + 1 see it).
            single = counts_a == 1
            if np.any(single):
                block_starts = np.zeros(act.size, dtype=np.int64)
                np.cumsum(counts_a[:-1], out=block_starts[1:])
                prevs[act[single]] = pool_flat[block_starts[single]]

            pool_flat = dst
            pool_counts = new_counts
            last_depth[act] = depth + 1
            stepped_any[act] = True
            finished[act] = new_counts[act] == 0
            step_cost.kernel_launches += 1
            kernels.append(
                KernelLaunch(
                    name=f"kernel:depth{depth}",
                    cost=step_cost,
                    num_warp_tasks=max(tasks, 1),
                )
            )
            total.merge(step_cost)
            prof.lap("update")

        prof = _profiler.clock(-1)
        self._finalize(
            instances, sink, prevs, finished, entry_finished, stepped_any,
            last_depth, iter_totals, pool_flat, pool_counts,
            edge_owner_parts, edge_src_parts, edge_dst_parts,
        )
        prof.lap("update")
        return kernels, total

    # ------------------------------------------------------------------ #
    def _alloc_warps(self, alloc, seg_owner, group_of_rank) -> np.ndarray:
        """Warp ids for allocated segments, advancing the engine's cursors.

        Mirrors :meth:`BatchedStepEngine._alloc_warp_block` -- sequential in
        segment order within the global sequence, or within each warp group's
        own cursor when coalescing -- so interpreted and compiled runs draw
        from one continuous warp-id stream.
        """
        engine = self.engine
        warp_full = np.full(alloc.size, -1, dtype=np.int64)
        if group_of_rank is None:
            num_alloc = int(alloc.sum())
            warp_full[alloc] = engine.warp_counter + np.arange(
                num_alloc, dtype=np.int64
            )
            engine.warp_counter += num_alloc
            return warp_full
        groups_seg = group_of_rank[seg_owner]
        for group in np.unique(groups_seg[alloc]):
            members = alloc & (groups_seg == group)
            count = int(members.sum())
            warp_full[members] = engine._group_warp_cursors[group] + np.arange(
                count, dtype=np.int64
            )
            engine._group_warp_cursors[group] += count
        return warp_full

    # ------------------------------------------------------------------ #
    def _uniform_select(
        self, allocated, lengths, ids, seg_owner, seg_slots, warp_full, depth,
        cost,
    ) -> np.ndarray:
        """Closed-form SELECT for all-ones biases (one draw block per depth).

        Charges the exact counters the interpreted path accumulates while
        building and searching the ones-CTPS -- segmented scan, CTPS
        normalisation, draw accounting, per-draw binary-search steps, and the
        with-replacement warp wrapper -- then draws and searches directly.
        """
        ns = int(self.config.neighbor_size)
        num_alloc = int(allocated.size)
        len_a = lengths[allocated]
        # Segmented Kogge-Stone scan over the allocated ones-segments.
        steps = _ceil_log2(len_a)
        chunks = np.maximum(1, (len_a + 31) // 32)
        cost.prefix_sum_steps += int((steps * chunks).sum())
        cost.warp_steps += int(steps.sum())
        cost.lane_ops += int((steps * np.minimum(len_a, 32)).sum())
        cost.charge_global_bytes(int(len_a.sum()) * 8)
        # CTPS normalisation: one warp step per segment.
        cost.warp_steps += num_alloc
        cost.lane_ops += int(np.minimum(len_a, 32).sum())
        # Draw accounting (segmented ITS).
        draws = num_alloc * ns
        cost.rng_draws += draws
        cost.selection_attempts += draws
        # Per-draw coordinates: (instance, depth, slot + 1, warp, lane).
        owners = seg_owner[allocated]
        coord_inst = np.repeat(ids[owners], ns)
        coord_slot = np.repeat(seg_slots[allocated] + 1, ns)
        coord_warp = np.repeat(warp_full[allocated], ns)
        lanes = np.tile(np.arange(ns, dtype=np.int64), num_alloc)
        n_draw = np.repeat(len_a, ns)
        if self._numba_select is not None:
            idx = self._numba_select(
                np.uint64(self.rng.seed),
                coord_inst.astype(np.uint64),
                np.full(draws, depth, dtype=np.uint64),
                coord_slot.astype(np.uint64),
                coord_warp.astype(np.uint64),
                lanes.astype(np.uint64),
                n_draw,
            )
        else:
            rs = np.atleast_1d(
                self.rng.uniform(coord_inst, depth, coord_slot, coord_warp, lanes)
            )
            idx = uniform_local_search(rs, n_draw)
        # Binary-search charges (one per draw, as SegmentedCTPS.search).
        search_steps = int(np.maximum(1, _ceil_log2(n_draw + 1)).sum())
        cost.binary_search_steps += search_steps
        cost.charge_global_bytes(search_steps * 8)
        # With-replacement warp wrapper: one lock-step instruction per warp.
        cost.warp_steps += num_alloc
        cost.lane_ops += min(ns, 32) * num_alloc
        return idx

    # ------------------------------------------------------------------ #
    def _compute_biases(
        self, neighbors, flat_idx, lengths, offsets, seg_owner, prevs
    ) -> np.ndarray:
        """Inlined bias formula for the non-uniform kinds (whole pool)."""
        graph = self.graph
        if self.kind == "weight_or_degree":
            if graph.is_weighted:
                return np.asarray(graph.weights[flat_idx], dtype=np.float64)
            return graph.degrees[neighbors].astype(np.float64) + 1.0
        # node2vec: second-order bias, stamp-array prev-neighbor test --
        # operation-for-operation the Node2Vec.edge_bias_batch formula.
        program = self.program
        weights = (
            np.asarray(graph.weights[flat_idx], dtype=np.float64)
            if graph.weights is not None
            else np.ones(neighbors.size, dtype=np.float64)
        )
        prevs_seg = prevs[seg_owner]
        prev_of_edge = np.repeat(prevs_seg, lengths)
        bias = weights / program.q
        stamps = np.full(graph.num_vertices, -1, dtype=np.int64)
        is_prev_neighbor = np.zeros(neighbors.size, dtype=bool)
        for k in np.nonzero(prevs_seg >= 0)[0]:
            lo, hi = int(offsets[k]), int(offsets[k + 1])
            stamps[graph.neighbors(int(prevs_seg[k]))] = k
            is_prev_neighbor[lo:hi] = stamps[neighbors[lo:hi]] == k
        is_prev = (neighbors == prev_of_edge) & (prev_of_edge >= 0)
        bias[is_prev_neighbor] = weights[is_prev_neighbor]
        bias[is_prev] = weights[is_prev] / program.p
        first = prev_of_edge < 0
        bias[first] = weights[first]
        return bias

    # ------------------------------------------------------------------ #
    def _finalize(
        self, instances, sink, prevs, finished, entry_finished, stepped_any,
        last_depth, iter_totals, pool_flat, pool_counts,
        edge_owner_parts, edge_src_parts, edge_dst_parts,
    ) -> None:
        """One deferred pass producing every per-instance observable effect."""
        num = len(instances)
        # Iteration counts: with-replacement selections always iterate once,
        # so only the per-owner totals matter (appended in rank order; within
        # a grouped sink's member list the values are indistinguishable).
        extend_for = getattr(sink, "extend_for", None)
        if extend_for is None:
            sink.extend([1] * int(iter_totals.sum()))
        else:
            for r in np.nonzero(iter_totals > 0)[0]:
                extend_for(
                    instances[r], np.ones(int(iter_totals[r]), dtype=np.int64)
                )
        # Edges: group the flat per-step draws by owner (stable, so each
        # owner's edges stay in step-then-segment-then-lane order -- the
        # exact order the interpreted UPDATE loop records them).
        if edge_owner_parts:
            all_owner = np.concatenate(edge_owner_parts)
            all_src = np.concatenate(edge_src_parts)
            all_dst = np.concatenate(edge_dst_parts)
            order = np.argsort(all_owner, kind="stable")
            all_owner = all_owner[order]
            all_src = all_src[order]
            all_dst = all_dst[order]
            per_rank = np.bincount(all_owner, minlength=num)
            bounds = np.zeros(num + 1, dtype=np.int64)
            np.cumsum(per_rank, out=bounds[1:])
            for r in np.nonzero(per_rank > 0)[0]:
                lo, hi = int(bounds[r]), int(bounds[r + 1])
                instances[r].record_edges(all_src[lo:hi], all_dst[lo:hi])
        # State write-back.
        pool_bounds = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(pool_counts, out=pool_bounds[1:])
        for r in range(num):
            inst = instances[r]
            if stepped_any[r]:
                lo, hi = int(pool_bounds[r]), int(pool_bounds[r + 1])
                inst.set_pool(pool_flat[lo:hi])
                inst.depth = int(last_depth[r])
                inst.prev_vertex = int(prevs[r])
                inst.finished = bool(finished[r])
            elif entry_finished[r]:
                # step_instances marks finished-at-entry instances on its
                # first call even though they never step.
                inst.finished = True
