"""Compiled step kernels: plan-specialized fused execution (the compiled tier).

The interpreted engine (:mod:`repro.engine.step`) re-decides everything per
step: which hooks a program overrides, how biases are evaluated, whether the
dedup detector is needed, how warp cursors advance.  For the plans that
dominate real workloads -- walk-shaped configs whose programs declare a
recognised bias kind -- all of those decisions are already fixed at plan
time, so this package compiles them *out*: a
:class:`~repro.compiled.compiler.KernelCompiler` inspects ``(algorithm,
config, plan)`` once and emits a fused per-depth callable
(:class:`~repro.compiled.walk_kernel.CompiledWalkKernel`) that keeps every
walker in flat arrays across depths, skips program-hook dispatch entirely,
and -- for uniform-bias walks -- never materialises biases or gathered
neighbor pools at all.

Two backends sit behind one interface:

* ``"numpy"`` -- the always-available fused ndarray program;
* ``"numba"`` -- an optional ``@njit`` inner loop for the uniform-bias
  select, auto-detected at import (:data:`NUMBA_AVAILABLE`) and exercised by
  the CI ``compiled-smoke`` job's with-numba leg.

Bit-compatibility is the contract: the compiled kernel draws the same
``(instance, depth, slot, warp, lane, attempt)`` RNG keys and charges the
same per-segment cost-model counters as the interpreted engine, so samples,
iteration counts, per-kernel records and simulated times are identical
(asserted by the compiled axis of
``tests/integration/test_cross_route_matrix.py``).  See ``docs/compiled.md``.
"""

from repro.compiled.backends import (
    NUMBA_AVAILABLE,
    available_backends,
    backend_fingerprint,
    compiled_enabled,
    force_backend,
    select_backend,
)
from repro.compiled.compiler import (
    CompileDecision,
    CompiledKernelSpec,
    clear_kernel_cache,
    compile_decision,
    get_kernel_spec,
    instantiate_kernel,
    kernel_cache_stats,
    plan_shape,
    plan_step_tier,
)

__all__ = [
    "NUMBA_AVAILABLE",
    "available_backends",
    "backend_fingerprint",
    "compiled_enabled",
    "force_backend",
    "select_backend",
    "CompileDecision",
    "CompiledKernelSpec",
    "clear_kernel_cache",
    "compile_decision",
    "get_kernel_spec",
    "instantiate_kernel",
    "kernel_cache_stats",
    "plan_shape",
    "plan_step_tier",
]
