"""Compiled step kernels: plan-specialized fused execution (the compiled tier).

The interpreted engine (:mod:`repro.engine.step`) re-decides everything per
step: which hooks a program overrides, how biases are evaluated, whether the
dedup detector is needed, how warp cursors advance.  For plans whose programs
*declare* their hook shapes (``compiled_bias`` / ``compiled_update`` /
``compiled_neighbor_count`` / ``compiled_vertex_bias``) all of those
decisions are fixed at plan time, so this package compiles them out through
two kernels:

* the **fused walk kernel** (:class:`~repro.compiled.walk_kernel.
  CompiledWalkKernel`) for walk-shaped plans on the in-memory and coalesced
  routes: every walker stays in flat arrays across depths, hook dispatch
  disappears, and the biased kinds answer selection from per-graph cached
  structures (:mod:`repro.compiled.structures`) -- flat CTPS prefixes for
  weight/degree biases, per-traversed-edge prefix rows for node2vec -- built
  once per (graph, epoch) and reused across depth steps and requests;
* the **compiled step engine** (:class:`~repro.compiled.step_engine.
  CompiledStepEngine`) for every other eligible shape (without-replacement,
  frontier and per-layer selection, visited tracking) and for the
  out-of-memory and sharded routes, which step through the engine's own
  methods: hook dispatch and per-step bias revalidation are replaced by the
  declared shapes.

Two backends sit behind one interface:

* ``"numpy"`` -- the always-available fused ndarray program;
* ``"numba"`` -- optional ``@njit`` inner loops for the walk kernel's
  uniform select and cached-prefix searches, auto-detected at import
  (:data:`NUMBA_AVAILABLE`) and exercised by the CI ``compiled-smoke`` job's
  with-numba leg.

Bit-compatibility is the contract: the compiled tier draws the same
``(instance, depth, slot, warp, lane, attempt)`` RNG keys and charges the
same per-segment cost-model counters as the interpreted engine, so samples,
iteration counts, per-kernel records and simulated times are identical
(asserted by the compiled axis of
``tests/integration/test_cross_route_matrix.py``).  See ``docs/compiled.md``.
"""

from repro.compiled.backends import (
    NUMBA_AVAILABLE,
    available_backends,
    backend_fingerprint,
    compiled_enabled,
    force_backend,
    select_backend,
)
from repro.compiled.compiler import (
    CompileDecision,
    CompiledKernelSpec,
    clear_kernel_cache,
    compile_decision,
    get_kernel_spec,
    instantiate_kernel,
    kernel_cache_stats,
    plan_shape,
    plan_step_tier,
)
from repro.compiled.step_engine import CompiledStepEngine, make_step_engine
from repro.compiled.structures import (
    GraphStructures,
    Node2VecPrefixTable,
    bind_structures,
    clear_structure_cache,
    evict_graph,
    get_structures,
    structure_cache_stats,
    update_structures,
)

__all__ = [
    "NUMBA_AVAILABLE",
    "available_backends",
    "backend_fingerprint",
    "compiled_enabled",
    "force_backend",
    "select_backend",
    "CompileDecision",
    "CompiledKernelSpec",
    "clear_kernel_cache",
    "compile_decision",
    "get_kernel_spec",
    "instantiate_kernel",
    "kernel_cache_stats",
    "plan_shape",
    "plan_step_tier",
    "CompiledStepEngine",
    "make_step_engine",
    "GraphStructures",
    "Node2VecPrefixTable",
    "bind_structures",
    "clear_structure_cache",
    "evict_graph",
    "get_structures",
    "structure_cache_stats",
    "update_structures",
]
