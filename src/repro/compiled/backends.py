"""Backend detection and selection for the compiled tier.

Two backends sit behind one interface: the pure-numpy fused ndarray program
(always available) and an optional numba ``@njit`` inner loop, auto-detected
at import.  The active backend is part of every kernel-cache key (via
:func:`backend_fingerprint`), so flipping numba availability -- or forcing a
backend in a test -- can never serve a stale kernel.

The whole tier can be switched off with ``REPRO_COMPILED=0`` (also ``false``
/ ``off``); the planner then costs every plan as interpreted.
"""

import contextlib
import os

__all__ = [
    "NUMBA_AVAILABLE",
    "available_backends",
    "backend_fingerprint",
    "compiled_enabled",
    "force_backend",
    "select_backend",
]

try:  # pragma: no cover - exercised only on hosts with numba installed
    from numba import njit as _njit  # noqa: F401

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False

_DISABLED_VALUES = ("0", "false", "off", "no")

# Test/benchmark override: None means "auto" (numba when available).
_backend_override = None


def compiled_enabled():
    """Whether the compiled tier is enabled for this process."""
    value = os.environ.get("REPRO_COMPILED", "").strip().lower()
    return value not in _DISABLED_VALUES


def available_backends():
    """Backends usable in this process, best first."""
    backends = ["numpy"]
    if NUMBA_AVAILABLE:
        backends.insert(0, "numba")
    return tuple(backends)


def select_backend():
    """The backend new kernels compile for (override > auto-detect)."""
    if _backend_override is not None:
        return _backend_override
    return "numba" if NUMBA_AVAILABLE else "numpy"


def backend_fingerprint():
    """Cache-key component tying kernels to the backend environment.

    Includes the raw availability bit *and* any override so that a kernel
    compiled under one regime is never reused under another.
    """
    return (NUMBA_AVAILABLE, _backend_override)


@contextlib.contextmanager
def force_backend(name):
    """Temporarily pin the backend (``"numpy"`` or ``"numba"``).

    Used by the speedup benchmark to time both backends and by tests to
    exercise the numpy path on numba hosts.  Forcing ``"numba"`` on a host
    without numba raises immediately rather than failing at kernel time.
    """
    global _backend_override
    if name not in ("numpy", "numba"):
        raise ValueError(f"unknown compiled backend: {name!r}")
    if name == "numba" and not NUMBA_AVAILABLE:
        raise RuntimeError("numba backend requested but numba is not importable")
    previous = _backend_override
    _backend_override = name
    try:
        yield
    finally:
        _backend_override = previous
