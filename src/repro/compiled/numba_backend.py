"""Optional numba ``@njit`` inner loop for the uniform-bias SELECT.

The compiled walk kernel's uniform specialisation reduces each draw to "hash
five stream coordinates, binary-search the result against ``(b + 1) / n``".
That is a scalar loop numba compiles well, so when numba is importable the
kernel fuses RNG generation and search into one ``@njit`` pass instead of a
numpy round trip.

Bit-compat notes (why every constant below is ``np.uint64``):

* numba promotes ``uint64 (op) signed-int`` to ``float64``, silently breaking
  the wrap-around arithmetic -- all operands, including shift amounts, are
  kept as ``np.uint64``;
* ``np.float64(bits) / 2**64`` matches ``bits.astype(np.float64) / 2**64``
  (one IEEE round on conversion; the division by an exact power of two is
  exact), so the draws equal :meth:`CounterRNG.uniform` bit for bit;
* the fold order and per-coordinate golden-ratio offsets replicate
  :meth:`CounterRNG._counter` for exactly five coordinates.

:func:`get_prefix_search` is the biased counterpart used with the per-graph
structure cache: the same five-coordinate fold, then a binary search of the
draw against a cached unnormalised prefix (probe ``prefix[mid] / total``,
one division per probe -- bitwise the comparisons
:meth:`~repro.selection.segmented.SegmentedCTPS.search` performs).

The module never imports numba at module scope; the ``get_*`` accessors
build (and cache) the jitted functions on first use and raise if numba is
unavailable, so importing :mod:`repro.compiled` stays dependency-free.
"""

from __future__ import annotations

import numpy as np

from repro.compiled.backends import NUMBA_AVAILABLE

__all__ = ["get_prefix_search", "get_uniform_select"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_DENOM = np.float64(2.0**64)

_FN = None


def get_uniform_select():
    """The jitted ``(seed, c1..c5, n) -> local indices`` kernel (cached)."""
    global _FN
    if _FN is not None:
        return _FN
    if not NUMBA_AVAILABLE:
        raise RuntimeError("numba backend requested but numba is not importable")
    from numba import njit

    golden = _GOLDEN
    mix1 = _MIX1
    mix2 = _MIX2
    denom = _DENOM
    # Per-coordinate offsets: coordinate i is folded as (c + (i+1) * GOLDEN).
    with np.errstate(over="ignore"):
        g1 = np.uint64(1) * golden
        g2 = np.uint64(2) * golden
        g3 = np.uint64(3) * golden
        g4 = np.uint64(4) * golden
        g5 = np.uint64(5) * golden
    s30 = np.uint64(30)
    s27 = np.uint64(27)
    s31 = np.uint64(31)

    @njit(cache=False)
    def uniform_select(seed, c1, c2, c3, c4, c5, n):
        out = np.empty(n.size, np.int64)
        for j in range(n.size):
            acc = seed
            # splitmix64(acc ^ (c_i + (i+1) * GOLDEN)) for i = 1..5
            z = (acc ^ (c1[j] + g1)) + golden
            z = (z ^ (z >> s30)) * mix1
            z = (z ^ (z >> s27)) * mix2
            acc = z ^ (z >> s31)
            z = (acc ^ (c2[j] + g2)) + golden
            z = (z ^ (z >> s30)) * mix1
            z = (z ^ (z >> s27)) * mix2
            acc = z ^ (z >> s31)
            z = (acc ^ (c3[j] + g3)) + golden
            z = (z ^ (z >> s30)) * mix1
            z = (z ^ (z >> s27)) * mix2
            acc = z ^ (z >> s31)
            z = (acc ^ (c4[j] + g4)) + golden
            z = (z ^ (z >> s30)) * mix1
            z = (z ^ (z >> s27)) * mix2
            acc = z ^ (z >> s31)
            z = (acc ^ (c5[j] + g5)) + golden
            z = (z ^ (z >> s30)) * mix1
            z = (z ^ (z >> s27)) * mix2
            acc = z ^ (z >> s31)
            r = np.float64(acc) / denom
            # Local binary search against the closed-form uniform CTPS.
            nn = n[j]
            nf = np.float64(nn)
            lo = np.int64(0)
            hi = nn - np.int64(1)
            while lo < hi:
                mid = (lo + hi) >> np.int64(1)
                if np.float64(mid + np.int64(1)) / nf <= r:
                    lo = mid + np.int64(1)
                else:
                    hi = mid
            out[j] = lo
        return out

    _FN = uniform_select
    return _FN


_PREFIX_FN = None


def get_prefix_search():
    """The jitted cached-CTPS kernel (cached).

    ``(seed, c1..c5, base, n, prefix, totals) -> local indices``: folds the
    five stream coordinates exactly like :func:`get_uniform_select`, then
    binary-searches the draw against the graph-wide unnormalised prefix
    slice ``prefix[base : base + n]`` with probe ``prefix[mid] / total``.
    """
    global _PREFIX_FN
    if _PREFIX_FN is not None:
        return _PREFIX_FN
    if not NUMBA_AVAILABLE:
        raise RuntimeError("numba backend requested but numba is not importable")
    from numba import njit

    golden = _GOLDEN
    mix1 = _MIX1
    mix2 = _MIX2
    denom = _DENOM
    with np.errstate(over="ignore"):
        g1 = np.uint64(1) * golden
        g2 = np.uint64(2) * golden
        g3 = np.uint64(3) * golden
        g4 = np.uint64(4) * golden
        g5 = np.uint64(5) * golden
    s30 = np.uint64(30)
    s27 = np.uint64(27)
    s31 = np.uint64(31)

    @njit(cache=False)
    def prefix_search(seed, c1, c2, c3, c4, c5, base, n, prefix, totals):
        out = np.empty(n.size, np.int64)
        for j in range(n.size):
            acc = seed
            # splitmix64(acc ^ (c_i + (i+1) * GOLDEN)) for i = 1..5
            z = (acc ^ (c1[j] + g1)) + golden
            z = (z ^ (z >> s30)) * mix1
            z = (z ^ (z >> s27)) * mix2
            acc = z ^ (z >> s31)
            z = (acc ^ (c2[j] + g2)) + golden
            z = (z ^ (z >> s30)) * mix1
            z = (z ^ (z >> s27)) * mix2
            acc = z ^ (z >> s31)
            z = (acc ^ (c3[j] + g3)) + golden
            z = (z ^ (z >> s30)) * mix1
            z = (z ^ (z >> s27)) * mix2
            acc = z ^ (z >> s31)
            z = (acc ^ (c4[j] + g4)) + golden
            z = (z ^ (z >> s30)) * mix1
            z = (z ^ (z >> s27)) * mix2
            acc = z ^ (z >> s31)
            z = (acc ^ (c5[j] + g5)) + golden
            z = (z ^ (z >> s30)) * mix1
            z = (z ^ (z >> s27)) * mix2
            acc = z ^ (z >> s31)
            r = np.float64(acc) / denom
            # Binary search of the cached unnormalised prefix slice.
            total = totals[j]
            lo = base[j]
            hi = base[j] + n[j] - np.int64(1)
            while lo < hi:
                mid = (lo + hi) >> np.int64(1)
                if prefix[mid] / total <= r:
                    lo = mid + np.int64(1)
                else:
                    hi = mid
            out[j] = lo - base[j]
        return out

    _PREFIX_FN = prefix_search
    return _PREFIX_FN
