"""The compiled step engine: hook-free specialisation of the batched engine.

The fused walk kernel (:mod:`repro.compiled.walk_kernel`) covers walk-shaped
plans on the routes whose executor drives the depth loop directly.  Every
*other* eligible shape -- without-replacement selection, frontier selection,
per-layer scope, visited tracking, and the out-of-memory / sharded routes
that step through :meth:`expand_entries` or per-shard engines -- runs on
:class:`CompiledStepEngine`: a :class:`~repro.engine.step.BatchedStepEngine`
whose hook evaluation is replaced by the program's *declared* shapes
(``compiled_bias`` / ``compiled_update`` / ``compiled_neighbor_count`` /
``compiled_vertex_bias``), so the hot loop never dispatches user hooks,
never re-validates bias arrays, and answers node2vec membership probes from
the structure cache's sorted edge keys.

Bit-compatibility: every override computes exactly the values the declared
hook computes (the declarations are promises, checked by the compiler's
eligibility pass) at the exact call sites the interpreted engine evaluates
them, so RNG keys, cost charges, samples and iteration counts are identical
-- the compiled axis of ``tests/integration/test_cross_route_matrix.py``
pins this for all four routes.

:func:`make_step_engine` is the single construction point the sampler,
coalescer, out-of-memory scheduler and shard runtime share: it returns the
specialised engine when the (program, config) is eligible and the compiled
tier is enabled, the plain interpreted engine otherwise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.bias import SamplingProgram, SegmentedEdgePool
from repro.api.config import SamplingConfig
from repro.engine.step import BatchedStepEngine
from repro.gpusim.prng import CounterRNG
from repro.graph.csr import CSRGraph

__all__ = ["CompiledStepEngine", "make_step_engine"]


class CompiledStepEngine(BatchedStepEngine):
    """Batched engine with declared-shape hook evaluation compiled in."""

    def __init__(
        self,
        graph: CSRGraph,
        program: SamplingProgram,
        config: SamplingConfig,
        rng: CounterRNG,
        *,
        kind: str,
    ):
        super().__init__(graph, program, config, rng)
        self.kind = kind
        self._update_shape = getattr(program, "compiled_update", None)
        self._ncount_shape = getattr(program, "compiled_neighbor_count", None)
        self._vbias_shape = getattr(program, "compiled_vertex_bias", None)
        self._structures = None
        self._n2v_keys = None
        if kind in ("weight_or_degree", "node2vec"):
            from repro.compiled.structures import get_structures

            self._structures = get_structures(graph, "weight_or_degree")
            if kind == "node2vec":
                self._n2v_keys = get_structures(
                    graph, "node2vec"
                ).sorted_edge_keys

    # ------------------------------------------------------------------ #
    def _edge_biases(self, pool, *, validate_values):
        """EDGEBIAS from the declared kind -- no dispatch, no revalidation.

        The ``uniform`` flag may be truer than the interpreted engine's
        (which reports ``False`` for any overridden hook): downstream it
        only short-circuits positive-bias counting and value validation,
        both of which are value-identical for all-ones biases.
        """
        total = pool.size
        kind = self.kind
        if kind == "uniform":
            return np.ones(total, dtype=np.float64), True
        if kind == "weight_or_uniform":
            if self.program.weighted_bias and self.graph.is_weighted:
                return np.asarray(pool.weights, dtype=np.float64), False
            return np.ones(total, dtype=np.float64), True
        if kind == "weight_or_degree":
            if self.graph.is_weighted:
                return np.asarray(pool.weights, dtype=np.float64), False
            return pool.neighbor_degrees().astype(np.float64) + 1.0, False
        return self._node2vec_biases(pool), False

    def _node2vec_biases(self, pool: SegmentedEdgePool) -> np.ndarray:
        """Second-order bias, membership answered by the sorted edge keys.

        Elementwise identical to :meth:`Node2Vec.edge_bias_batch`; the
        vectorised key search returns the same booleans as the hook's
        per-segment stamp loop (kept as the fallback when the key space
        would overflow int64).
        """
        program = self.program
        graph = self.graph
        weights = np.asarray(pool.weights, dtype=np.float64)
        lengths = pool.lengths()
        prevs = np.fromiter(
            (inst.prev_vertex for inst in pool.instances),
            dtype=np.int64,
            count=pool.num_segments,
        )
        prev_of_edge = np.repeat(prevs, lengths)
        bias = weights / program.q
        is_prev_neighbor = np.zeros(pool.size, dtype=bool)
        keys = self._n2v_keys
        valid = prev_of_edge >= 0
        if keys is not None and keys.size and np.any(valid):
            probe = (
                prev_of_edge[valid] * np.int64(graph.num_vertices)
                + pool.neighbors[valid]
            )
            pos = np.minimum(np.searchsorted(keys, probe), keys.size - 1)
            is_prev_neighbor[valid] = keys[pos] == probe
        elif keys is None:
            stamps = np.full(graph.num_vertices, -1, dtype=np.int64)
            for k in np.nonzero(prevs >= 0)[0]:
                lo, hi = int(pool.offsets[k]), int(pool.offsets[k + 1])
                stamps[graph.neighbors(int(prevs[k]))] = k
                is_prev_neighbor[lo:hi] = stamps[pool.neighbors[lo:hi]] == k
        is_prev = (pool.neighbors == prev_of_edge) & valid
        bias[is_prev_neighbor] = weights[is_prev_neighbor]
        bias[is_prev] = weights[is_prev] / program.p
        first = ~valid
        bias[first] = weights[first]
        return bias

    # ------------------------------------------------------------------ #
    def _neighbor_counts(self, pool, lengths, hook_mask):
        if self._ncount_shape != "pool_capped":
            return super()._neighbor_counts(pool, lengths, hook_mask)
        requested = np.full(
            pool.num_segments, self.config.neighbor_size, dtype=np.int64
        )
        capped = np.asarray(lengths, dtype=np.int64)
        cap = self.program.max_per_vertex
        if cap is not None:
            capped = np.minimum(capped, int(cap))
        requested[hook_mask] = capped[hook_mask]
        return requested

    # ------------------------------------------------------------------ #
    def _update_vertices(self, pool, k, segment, accepted):
        shape = self._update_shape
        if shape == "unvisited":
            return pool.instances[k].unvisited(accepted)
        if shape == "keep_src_on_dead_end":
            if accepted.size:
                return accepted
            return np.array([int(pool.src[k])], dtype=np.int64)
        return accepted  # declared-default update is the identity

    # ------------------------------------------------------------------ #
    def _frontier_biases(self, active):
        if self._vbias_shape != "degree_plus_one":
            return super()._frontier_biases(active)
        cfg = self.config
        if cfg.frontier_size == 0:
            return {}
        return {
            id(inst): self.graph.degrees[inst.frontier_pool].astype(
                np.float64
            )
            + 1.0
            for inst in active
            if inst.pool_size > cfg.frontier_size
        }


def make_step_engine(
    graph: CSRGraph,
    program: SamplingProgram,
    config: SamplingConfig,
    rng: CounterRNG,
    *,
    use_compiled: Optional[bool] = None,
) -> BatchedStepEngine:
    """The step engine every route constructs through.

    Returns the compiled specialisation whenever the (program, config) is
    eligible and the tier is not disabled (``use_compiled=False`` or
    ``REPRO_COMPILED=0``); the interpreted engine otherwise.  Both produce
    bit-identical results, so the choice never changes observable output --
    only whether hook dispatch survives into the hot loop.
    """
    from repro.compiled.backends import compiled_enabled
    from repro.compiled.compiler import compile_decision

    if use_compiled is not False and compiled_enabled():
        decision = compile_decision(program, config)
        if decision.eligible:
            return CompiledStepEngine(
                graph, program, config, rng, kind=decision.kind
            )
    return BatchedStepEngine(graph, program, config, rng)
