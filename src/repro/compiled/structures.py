"""Per-graph sampling-structure cache for the compiled tier.

C-SAW's biased walks spend most of every depth step rebuilding inverse-
transform (CTPS) prefix tables over the frontier's neighbor pools --
tables that depend only on the graph, never on the step.  This module
caches the flat graph-wide analogue of the per-vertex structures in
:mod:`repro.selection.incremental`, keyed by graph identity:

* ``weight_or_degree`` -- one segmented Kogge-Stone prefix over every
  adjacency row (the concatenation of every vertex's CTPS), wrapped in a
  zero-copy :class:`~repro.selection.segmented.SegmentedCTPS` view whose
  offsets *are* ``row_ptr``, so the compiled walk kernel can binary-search
  any frontier's pools without materialising or rescanning them;
* ``node2vec`` -- the sorted global edge-key array used to answer the
  "is neighbor ``y`` adjacent to ``prev``" membership probes with one
  vectorised binary search instead of a per-pool Python loop.

Bit-compatibility: the segmented scan's arithmetic is per-segment (bucketed
doubling gives every segment its own step schedule, and the integer fast
path is exact below 2**53), so a row's cached prefix values are bitwise
identical to the per-step scan over the same pools.  Cached selection
therefore draws the same indices as the rebuild-every-step kernel, and the
kernel charges the cost model the same closed forms either way.

Lifecycle: entries evict when their graph is garbage-collected, when the
service retires the owning epoch (:func:`evict_graph`), or explicitly
(:func:`clear_structure_cache`).  :func:`bind_structures` chains onto a
:class:`~repro.graph.delta.DeltaGraph`'s ``on_compact`` hook (preserving
any hook already installed) so a compaction *patches* the touched rows
instead of rebuilding the whole graph's tables.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.graph.csr import CSRGraph
from repro.selection.segmented import (
    SegmentedCTPS,
    concat_aranges,
    segment_positive_counts,
    segmented_kogge_stone_inclusive,
)
from repro.telemetry import profiler as _profiler

__all__ = [
    "STRUCTURE_KINDS",
    "GraphStructures",
    "Node2VecPrefixTable",
    "bind_structures",
    "clear_structure_cache",
    "evict_graph",
    "get_structures",
    "structure_cache_stats",
    "update_structures",
]

#: Bias kinds that carry a cacheable per-graph structure.  Uniform kinds
#: need none; per-pool weight slices are recomputed cheaply by the engine.
STRUCTURE_KINDS = ("weight_or_degree", "node2vec")


class Node2VecPrefixTable:
    """Per-``(p, q)`` cache of second-order CTPS prefix rows.

    A node2vec transition's bias vector depends only on the traversed edge
    ``prev -> vertex`` (given the graph and ``(p, q)``), so each row's
    unnormalised prefix is built once -- by the same segmented scan the
    rebuild-every-step path runs -- and reused across depth steps, walkers
    and requests.  Rows live back to back in one growing float64 buffer;
    ``table`` maps the edge key (``prev * V + vertex``, or ``-(vertex+1)``
    for the first, prev-less step) to ``(buffer offset, total)``.

    When the buffer would exceed ``max_floats`` the table resets wholesale
    (epoch-style) rather than tracking per-row recency -- the cache is an
    accelerator, never a correctness dependency.
    """

    def __init__(self, max_floats: int = 1 << 24):
        self.buffer = np.empty(0, dtype=np.float64)
        self.used = 0
        self.table: Dict[int, tuple] = {}
        self.max_floats = int(max_floats)
        self.hits = 0
        self.misses = 0
        self.resets = 0

    def append(
        self,
        prefix: np.ndarray,
        row_offsets: np.ndarray,
        keys: np.ndarray,
        totals: np.ndarray,
    ) -> np.ndarray:
        """Store freshly scanned rows; returns each row's buffer offset."""
        n = int(prefix.size)
        if self.used + n > self.buffer.size:
            if self.used + n > self.max_floats:
                self.table.clear()
                self.used = 0
                self.resets += 1
            if self.used + n > self.buffer.size:
                size = max(1024, 2 * self.buffer.size, self.used + n)
                grown = np.empty(size, dtype=np.float64)
                grown[: self.used] = self.buffer[: self.used]
                self.buffer = grown
        start = self.used
        self.buffer[start : start + n] = prefix
        offs = start + np.asarray(row_offsets[:-1], dtype=np.int64)
        for key, off, tot in zip(
            keys.tolist(), offs.tolist(), totals.tolist()
        ):
            self.table[int(key)] = (off, float(tot))
        self.used += n
        return offs


@dataclass
class GraphStructures:
    """Cached selection structures of one graph, built lazily per kind."""

    num_vertices: int
    num_edges: int
    #: Per-edge bias values in CSR order (``weight_or_degree``).
    flat_bias: Optional[np.ndarray] = None
    #: Zero-copy segmented CTPS whose segments are the adjacency rows.
    ctps: Optional[SegmentedCTPS] = None
    #: Per-vertex count of positive-bias neighbors (the alloc mask input).
    positive_counts: Optional[np.ndarray] = None
    #: Sorted ``src * V + dst`` edge keys (``node2vec``); ``None`` when the
    #: key space would overflow int64 and membership must be recomputed.
    sorted_edge_keys: Optional[np.ndarray] = None
    _kinds: Set[str] = field(default_factory=set)
    _n2v_tables: Dict[tuple, Node2VecPrefixTable] = field(default_factory=dict)

    def has(self, kind: str) -> bool:
        """Whether structures of ``kind`` have been built."""
        return kind in self._kinds

    def node2vec_table(self, p: float, q: float) -> Node2VecPrefixTable:
        """The (lazily created) second-order prefix cache for ``(p, q)``."""
        key = (float(p), float(q))
        table = self._n2v_tables.get(key)
        if table is None:
            table = Node2VecPrefixTable()
            self._n2v_tables[key] = table
        return table


class _Cache:
    def __init__(self) -> None:
        # RLock: GC may run a weakref finalizer while we hold the lock.
        self.lock = threading.RLock()
        self.entries: Dict[int, GraphStructures] = {}
        self.finalizers: Dict[int, "weakref.finalize"] = {}
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.updates = 0
        self.evictions = 0
        self.rows_rebuilt = 0


_CACHE = _Cache()


def _forget(key: int) -> None:
    with _CACHE.lock:
        if _CACHE.entries.pop(key, None) is not None:
            _CACHE.evictions += 1
        _CACHE.finalizers.pop(key, None)


def _watch(graph: CSRGraph, key: int) -> None:
    try:
        _CACHE.finalizers[key] = weakref.finalize(graph, _forget, key)
    except TypeError:  # non-weakrefable stand-ins (tests)
        pass


# --------------------------------------------------------------------- #
# Builders
# --------------------------------------------------------------------- #
def _weight_or_degree_bias(graph: CSRGraph) -> np.ndarray:
    """Per-edge bias in CSR order: weights, or neighbor degree + 1."""
    if graph.is_weighted:
        return np.ascontiguousarray(graph.weights, dtype=np.float64)
    # Same arithmetic as pool.neighbor_degrees() + 1.0 (int64 + 1.0).
    return graph.degrees[graph.col_idx] + 1.0


def _scan_rows(values: np.ndarray, graph: CSRGraph):
    """Graph-wide segmented prefix and per-row totals (empty rows skipped).

    Every edge belongs to a row of positive degree, so scanning only the
    non-empty rows' compacted offsets still covers the whole flat array --
    and each row's prefix values are bitwise identical to a per-step scan
    over the same pool.
    """
    lengths = graph.degrees
    totals = np.zeros(lengths.size, dtype=np.float64)
    if values.size == 0:
        return np.zeros(0, dtype=np.float64), totals
    nz = np.nonzero(lengths > 0)[0]
    comp_offsets = np.zeros(nz.size + 1, dtype=np.int64)
    np.cumsum(lengths[nz], out=comp_offsets[1:])
    prefix = segmented_kogge_stone_inclusive(values, comp_offsets, cost=None)
    totals[nz] = prefix[comp_offsets[1:] - 1]
    return prefix, totals


def _edge_keys(graph: CSRGraph) -> Optional[np.ndarray]:
    num_vertices = graph.num_vertices
    if num_vertices and num_vertices * num_vertices > 2 ** 63:
        return None
    src = np.repeat(
        np.arange(num_vertices, dtype=np.int64), graph.degrees
    )
    keys = src * np.int64(max(num_vertices, 1)) + graph.col_idx
    keys.sort()
    return keys


def _build_kind(entry: GraphStructures, graph: CSRGraph, kind: str) -> None:
    if kind == "weight_or_degree":
        flat_bias = _weight_or_degree_bias(graph)
        prefix, totals = _scan_rows(flat_bias, graph)
        entry.flat_bias = flat_bias
        # Direct construction: from_biases would reject all-zero rows, but
        # empty/zero rows are never searched (the alloc mask excludes them).
        entry.ctps = SegmentedCTPS(
            prefix=prefix,
            offsets=graph.row_ptr,
            totals=totals,
            lengths=graph.degrees,
        )
        entry.positive_counts = segment_positive_counts(
            flat_bias, graph.row_ptr
        )
    elif kind == "node2vec":
        entry.sorted_edge_keys = _edge_keys(graph)
    else:  # pragma: no cover - guarded by get_structures
        raise ValueError(f"unknown structure kind {kind!r}")
    entry._kinds.add(kind)


# --------------------------------------------------------------------- #
# Public cache API
# --------------------------------------------------------------------- #
def get_structures(graph: CSRGraph, kind: str) -> GraphStructures:
    """The cached structures of ``graph`` for ``kind``, building on miss.

    The build is charged to wall-clock only (profiler lap ``bias_build``);
    the kernel charges the cost model the same per-step closed forms the
    rebuild-every-step path charges, keeping cost totals bit-identical.
    """
    if kind not in STRUCTURE_KINDS:
        raise ValueError(f"unknown structure kind {kind!r}")
    key = id(graph)
    prof = _profiler.clock(-1)
    with _CACHE.lock:
        entry = _CACHE.entries.get(key)
        if entry is not None and entry.has(kind):
            _CACHE.hits += 1
            prof.lap("structure_hit")
            return entry
        _CACHE.misses += 1
        if entry is None:
            entry = GraphStructures(
                num_vertices=graph.num_vertices, num_edges=graph.num_edges
            )
            _CACHE.entries[key] = entry
            _watch(graph, key)
        _build_kind(entry, graph, kind)
        _CACHE.builds += 1
        prof.lap("bias_build")
        return entry


def evict_graph(graph) -> bool:
    """Drop ``graph``'s cached structures (the epoch-retirement hook)."""
    with _CACHE.lock:
        entry = _CACHE.entries.pop(id(graph), None)
        finalizer = _CACHE.finalizers.pop(id(graph), None)
        if finalizer is not None:
            finalizer.detach()
        if entry is not None:
            _CACHE.evictions += 1
        return entry is not None


def clear_structure_cache() -> None:
    """Drop every entry and reset the counters (tests / process reuse)."""
    with _CACHE.lock:
        for finalizer in _CACHE.finalizers.values():
            finalizer.detach()
        _CACHE.entries.clear()
        _CACHE.finalizers.clear()
        _CACHE.hits = _CACHE.misses = _CACHE.builds = 0
        _CACHE.updates = _CACHE.evictions = _CACHE.rows_rebuilt = 0


def structure_cache_stats() -> Dict[str, int]:
    """Counter snapshot: entries, hits, misses, builds, updates, evictions.

    The ``table_*`` counters aggregate the node2vec prefix tables of every
    live entry (per-row hits/misses and buffer floats in use); tables die
    with their entry, so retiring an epoch also zeroes its table counters.
    """
    with _CACHE.lock:
        table_hits = table_misses = table_resets = table_floats = 0
        for entry in _CACHE.entries.values():
            for table in entry._n2v_tables.values():
                table_hits += table.hits
                table_misses += table.misses
                table_resets += table.resets
                table_floats += table.used
        return {
            "entries": len(_CACHE.entries),
            "hits": _CACHE.hits,
            "misses": _CACHE.misses,
            "builds": _CACHE.builds,
            "updates": _CACHE.updates,
            "evictions": _CACHE.evictions,
            "rows_rebuilt": _CACHE.rows_rebuilt,
            "table_hits": table_hits,
            "table_misses": table_misses,
            "table_resets": table_resets,
            "table_floats": table_floats,
        }


# --------------------------------------------------------------------- #
# Incremental updates (DeltaGraph compaction)
# --------------------------------------------------------------------- #
def _patch_weight_or_degree(
    entry: GraphStructures,
    old_graph: CSRGraph,
    new_graph: CSRGraph,
    touched: np.ndarray,
    new_entry: GraphStructures,
) -> int:
    """Rebuild only the rows a compaction invalidated; copy the rest.

    For weighted graphs the touched set is exactly the invalidation set.
    For degree bias a touched vertex also invalidates every row that holds
    it as a *neighbor* (its degree value appears in their bias slices), so
    those in-neighbor rows join the rebuild set.
    """
    v_old, v_new = old_graph.num_vertices, new_graph.num_vertices
    old_deg, new_deg = old_graph.degrees, new_graph.degrees
    shared = min(v_old, v_new)

    rebuild = np.zeros(v_new, dtype=bool)
    rebuild[touched[touched < v_new]] = True
    rebuild[shared:] = True
    deg_changed = np.ones(v_new, dtype=bool)
    deg_changed[:shared] = old_deg[:shared] != new_deg[:shared]
    rebuild[:shared] |= deg_changed[:shared]
    if not new_graph.is_weighted and new_graph.num_edges:
        hit = deg_changed[new_graph.col_idx]
        if hit.any():
            rows = (
                np.searchsorted(
                    new_graph.row_ptr, np.nonzero(hit)[0], side="right"
                )
                - 1
            )
            rebuild[np.unique(rows)] = True

    new_bias = np.empty(new_graph.num_edges, dtype=np.float64)
    new_prefix = np.empty(new_graph.num_edges, dtype=np.float64)

    keep = np.nonzero(~rebuild[:shared] & (new_deg[:shared] > 0))[0]
    if keep.size:
        lens = new_deg[keep]
        local = concat_aranges(lens)
        src_pos = np.repeat(old_graph.row_ptr[:-1][keep], lens) + local
        dst_pos = np.repeat(new_graph.row_ptr[:-1][keep], lens) + local
        new_bias[dst_pos] = entry.flat_bias[src_pos]
        new_prefix[dst_pos] = entry.ctps.prefix[src_pos]

    rebuild_rows = np.nonzero(rebuild & (new_deg > 0))[0]
    if rebuild_rows.size:
        lens = new_deg[rebuild_rows]
        dst_pos = (
            np.repeat(new_graph.row_ptr[:-1][rebuild_rows], lens)
            + concat_aranges(lens)
        )
        if new_graph.is_weighted:
            vals = np.ascontiguousarray(
                new_graph.weights[dst_pos], dtype=np.float64
            )
        else:
            vals = new_graph.degrees[new_graph.col_idx[dst_pos]] + 1.0
        comp_offsets = np.zeros(rebuild_rows.size + 1, dtype=np.int64)
        np.cumsum(lens, out=comp_offsets[1:])
        new_bias[dst_pos] = vals
        new_prefix[dst_pos] = segmented_kogge_stone_inclusive(
            vals, comp_offsets, cost=None
        )

    totals = np.zeros(v_new, dtype=np.float64)
    nz = new_deg > 0
    if new_graph.num_edges:
        totals[nz] = new_prefix[new_graph.row_ptr[1:][nz] - 1]
    new_entry.flat_bias = new_bias
    new_entry.ctps = SegmentedCTPS(
        prefix=new_prefix,
        offsets=new_graph.row_ptr,
        totals=totals,
        lengths=new_deg,
    )
    new_entry.positive_counts = segment_positive_counts(
        new_bias, new_graph.row_ptr
    )
    new_entry._kinds.add("weight_or_degree")
    return int(rebuild_rows.size)


def update_structures(old_graph, new_graph, touched) -> int:
    """Patch ``old_graph``'s cached structures onto ``new_graph``.

    Returns the number of ``weight_or_degree`` rows rebuilt (0 when the
    old graph carried no cached structures -- the new graph then builds
    lazily on first use).
    """
    with _CACHE.lock:
        entry = _CACHE.entries.pop(id(old_graph), None)
        finalizer = _CACHE.finalizers.pop(id(old_graph), None)
        if finalizer is not None:
            finalizer.detach()
    if entry is None:
        return 0
    prof = _profiler.clock(-1)
    touched = np.asarray(touched, dtype=np.int64).reshape(-1)
    new_entry = GraphStructures(
        num_vertices=new_graph.num_vertices, num_edges=new_graph.num_edges
    )
    rebuilt = 0
    if entry.has("weight_or_degree"):
        rebuilt = _patch_weight_or_degree(
            entry, old_graph, new_graph, touched, new_entry
        )
    if entry.has("node2vec"):
        # Sorted keys do not patch; the re-sort is cheap next to the scans.
        new_entry.sorted_edge_keys = _edge_keys(new_graph)
        new_entry._kinds.add("node2vec")
    with _CACHE.lock:
        _CACHE.entries[id(new_graph)] = new_entry
        _watch(new_graph, id(new_graph))
        _CACHE.updates += 1
        _CACHE.rows_rebuilt += rebuilt
    prof.lap("structure_update")
    return rebuilt


def bind_structures(delta) -> None:
    """Patch this cache on every compaction of ``delta``.

    Chains after any hook already installed (unlike
    :func:`repro.selection.incremental.bind`, which replaces it), so alias/
    ITS caches and this cache can both follow one graph.  Bind while the
    overlay is empty (e.g. right after construction or a compaction) so the
    captured base is the snapshot samplers actually run against.
    """
    from repro.graph.delta import as_csr

    holder = {"base": as_csr(delta)}
    previous = delta.on_compact

    def _hook(new_base: CSRGraph, touched: np.ndarray) -> None:
        if previous is not None:
            previous(new_base, touched)
        update_structures(holder["base"], new_base, touched)
        holder["base"] = new_base

    delta.on_compact = _hook
