"""The kernel compiler: plan-time specialisation decisions and the kernel cache.

``compile_decision`` is the static eligibility check: a program compiles when
it *declares* a recognised bias kind (``SamplingProgram.compiled_bias``) and
the (program, config) pair proves every interpreted fallback unused -- default
accept/update/neighbor-count hooks, per-vertex scope, whole-pool frontiers
(``frontier_size == 0``), with-replacement selection, ``NEXT_LAYER`` pools and
no visited tracking.  Eligibility deliberately never inspects instances: the
service plans without them, and the fused kernel handles ragged multi-vertex
pools generally.

``plan_step_tier`` is the planner's entry point: it combines the eligibility
check with the route (only the in-memory and coalesced routes drive the
engine's depth loop directly), the process-wide enable switch, and the
calibrated cost comparison from :mod:`repro.planner.calibration` -- falling
back to interpretation with a recorded reason whenever any gate fails, so
``ExecutionPlan.explain()`` can say *why* a plan interprets.

Compiled kernels are cached per ``(program identity + cache token, config,
plan shape, backend fingerprint)`` so compilation cost amortises across
service requests; flipping numba availability or forcing a backend changes
the fingerprint and can never serve a stale kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.api.bias import SamplingProgram
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope
from repro.compiled.backends import (
    backend_fingerprint,
    compiled_enabled,
    select_backend,
)

__all__ = [
    "CompileDecision",
    "CompiledKernelSpec",
    "clear_kernel_cache",
    "compile_decision",
    "get_kernel_spec",
    "instantiate_kernel",
    "kernel_cache_stats",
    "plan_shape",
    "plan_step_tier",
]

#: Bias kinds the fused walk kernel implements.
KNOWN_KINDS = ("uniform", "weight_or_degree", "node2vec")

#: Routes whose executor drives the engine depth loop directly (the sharded
#: route steps through shard workers, the OOM route through expand_entries).
COMPILABLE_ROUTES = ("in_memory", "coalesced")


@dataclass(frozen=True)
class CompileDecision:
    """Outcome of the static eligibility check for one (program, config)."""

    eligible: bool
    #: The declared bias kind when eligible.
    kind: Optional[str] = None
    #: Why compilation was refused (``explain()`` surfaces it).
    reason: Optional[str] = None


@dataclass(frozen=True)
class CompiledKernelSpec:
    """What the cache stores: enough to instantiate a kernel per engine."""

    kind: str
    backend: str


# --------------------------------------------------------------------------- #
# Eligibility
# --------------------------------------------------------------------------- #
def compile_decision(
    program: SamplingProgram, config: SamplingConfig
) -> CompileDecision:
    """Static check: can this (program, config) run on the fused walk kernel?"""
    cls = type(program)
    kind = getattr(program, "compiled_bias", None)
    if kind is None:
        return CompileDecision(
            False, reason="program declares no compiled bias kind"
        )
    if kind not in KNOWN_KINDS:
        return CompileDecision(
            False, reason=f"unknown compiled bias kind {kind!r}"
        )
    if cls.accept is not SamplingProgram.accept:
        return CompileDecision(False, reason="program overrides accept")
    if cls.update is not SamplingProgram.update:
        return CompileDecision(False, reason="program overrides update")
    if cls.neighbor_count is not SamplingProgram.neighbor_count:
        return CompileDecision(
            False, reason="program overrides neighbor_count"
        )
    if config.scope is not SelectionScope.PER_VERTEX:
        return CompileDecision(False, reason="per-layer selection scope")
    if config.frontier_size != 0:
        return CompileDecision(
            False, reason="frontier selection enabled (frontier_size > 0)"
        )
    if not config.with_replacement:
        return CompileDecision(
            False, reason="selection without replacement (dedup detector)"
        )
    if config.pool_policy is not PoolPolicy.NEXT_LAYER:
        return CompileDecision(False, reason="non-NEXT_LAYER pool policy")
    if config.track_visited:
        return CompileDecision(False, reason="visited tracking enabled")
    return CompileDecision(True, kind=kind)


# --------------------------------------------------------------------------- #
# Kernel cache
# --------------------------------------------------------------------------- #
_KERNEL_CACHE: Dict[tuple, CompiledKernelSpec] = {}
_CACHE_HITS = 0
_CACHE_MISSES = 0


def plan_shape(plan) -> Tuple[str, str, int]:
    """The plan properties a cached kernel is specialised to.

    Instance *counts* are deliberately excluded (the kernel is shape-generic
    over walkers); what matters is the execution topology: the route, the
    warp-cursor regime and the fusion-group count (grouped vs global warp
    allocation compile to different cursor-advance code paths).
    """
    return (plan.route, plan.warp_cursors, len(plan.member_sizes))


def _cache_key(program: SamplingProgram, config: SamplingConfig, plan) -> tuple:
    cls = type(program)
    return (
        f"{cls.__module__}.{cls.__qualname__}",
        program.compiled_cache_token(),
        config,
        plan_shape(plan),
        backend_fingerprint(),
    )


def get_kernel_spec(
    program: SamplingProgram, config: SamplingConfig, plan
) -> CompiledKernelSpec:
    """The cached kernel spec for an eligible (program, config, plan).

    Raises ``ValueError`` when the combination is not compilable -- callers
    gate on :func:`compile_decision` / ``plan.step_tier`` first.
    """
    global _CACHE_HITS, _CACHE_MISSES
    key = _cache_key(program, config, plan)
    spec = _KERNEL_CACHE.get(key)
    if spec is not None:
        _CACHE_HITS += 1
        return spec
    decision = compile_decision(program, config)
    if not decision.eligible:
        raise ValueError(f"plan is not compilable: {decision.reason}")
    # Only the uniform kind has a fused scalar inner loop worth jitting; the
    # non-uniform kinds reuse the segmented numpy SELECT verbatim.
    backend = select_backend() if decision.kind == "uniform" else "numpy"
    spec = CompiledKernelSpec(kind=decision.kind, backend=backend)
    _KERNEL_CACHE[key] = spec
    _CACHE_MISSES += 1
    return spec


def instantiate_kernel(spec: CompiledKernelSpec, engine):
    """Bind a cached spec to a live engine (RNG + warp cursors shared)."""
    from repro.compiled.walk_kernel import CompiledWalkKernel

    return CompiledWalkKernel(engine, kind=spec.kind, backend=spec.backend)


def kernel_cache_stats() -> Dict[str, int]:
    """Cache effectiveness counters (service metrics / tests)."""
    return {
        "entries": len(_KERNEL_CACHE),
        "hits": _CACHE_HITS,
        "misses": _CACHE_MISSES,
    }


def clear_kernel_cache() -> None:
    """Drop every cached kernel and reset the hit/miss counters."""
    global _CACHE_HITS, _CACHE_MISSES
    _KERNEL_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0


# --------------------------------------------------------------------------- #
# The planner's tier decision
# --------------------------------------------------------------------------- #
_PROBE_CACHE: Dict[str, Optional[SamplingProgram]] = {}


def _probe_program(algorithm: str) -> Optional[SamplingProgram]:
    """Registry probe for service plans that carry no program object."""
    if algorithm in _PROBE_CACHE:
        return _PROBE_CACHE[algorithm]
    from repro.algorithms.registry import ALGORITHM_REGISTRY

    info = ALGORITHM_REGISTRY.get(algorithm)
    program = info.program_factory() if info is not None else None
    _PROBE_CACHE[algorithm] = program
    return program


def plan_step_tier(
    config: SamplingConfig,
    route: str,
    predicted_time_s: float,
    *,
    program: Optional[SamplingProgram] = None,
    algorithm: Optional[str] = None,
    allow_compiled: Optional[bool] = None,
) -> Tuple[str, Optional[str], Optional[str]]:
    """Decide the step tier for one plan: ``(tier, backend, fallback_reason)``.

    ``allow_compiled`` is the request knob: ``False`` disables the tier,
    ``True`` forces it for eligible plans (skipping the cost comparison),
    ``None`` lets the calibrated cost model decide.  The returned fallback
    reason is ``None`` exactly when the tier is ``"compiled"``.
    """
    if allow_compiled is False:
        return "interpreted", None, "compiled tier disabled by request"
    if not compiled_enabled():
        return "interpreted", None, "compiled tier disabled (REPRO_COMPILED)"
    if route not in COMPILABLE_ROUTES:
        return (
            "interpreted",
            None,
            f"route {route!r} does not drive the engine depth loop",
        )
    if program is None and algorithm is not None:
        program = _probe_program(algorithm)
    if program is None:
        return "interpreted", None, "program unknown at plan time"
    decision = compile_decision(program, config)
    if not decision.eligible:
        return "interpreted", None, decision.reason
    backend = select_backend() if decision.kind == "uniform" else "numpy"
    if allow_compiled is None:
        from repro.planner.calibration import load_calibration

        cal = load_calibration()
        interpreted_s = float(predicted_time_s) * cal.time_scale
        compiled_s = (
            cal.compiled_overhead_s + interpreted_s / cal.compiled_speedup
        )
        if compiled_s > interpreted_s:
            return (
                "interpreted",
                None,
                "interpretation predicted faster than compilation",
            )
    return "compiled", backend, None
