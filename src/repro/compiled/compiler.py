"""The kernel compiler: plan-time specialisation decisions and the kernel cache.

``compile_decision`` is the static eligibility check: a program compiles when
it *declares* a recognised bias kind (``SamplingProgram.compiled_bias``) and
every hook it overrides is covered by a recognised declared shape
(``compiled_update`` / ``compiled_neighbor_count`` / ``compiled_vertex_bias``)
-- an overridden hook with no declaration (or an ``accept`` override, which is
inherently stateful) keeps the program interpreted with an explicit reason.
Eligibility deliberately never inspects instances or routes: the service plans
without instances, and route selection happens later in ``get_kernel_spec`` /
``plan_step_tier``.

Eligible plans map onto one of two kernels:

* ``"walk"`` -- the fused depth-loop kernel
  (:class:`~repro.compiled.walk_kernel.CompiledWalkKernel`) for walk-shaped
  plans (single-neighbor-ish per-vertex selection with replacement, no
  frontier sub-selection, no visited tracking, no declared hook shapes) on
  the routes whose executor drives the depth loop directly.
* ``"engine"`` -- the compiled step engine
  (:class:`~repro.compiled.step_engine.CompiledStepEngine`), which replaces
  hook dispatch inside the batched engine and therefore covers every other
  eligible shape *and* every route (the OOM scheduler steps through
  ``expand_entries``, the sharded route through per-shard engines).

``plan_step_tier`` is the planner's entry point: it combines eligibility with
the process-wide enable switch and -- for walk kernels only, where the fused
loop has real specialisation overhead worth weighing -- the calibrated cost
comparison from :mod:`repro.planner.calibration`.  Engine-kind plans compile
whenever eligible: the compiled engine is strictly-less-work per step.  Every
refusal records a reason so ``ExecutionPlan.explain()`` can say *why* a plan
interprets.

Compiled kernels are cached per ``(program identity + cache token, config,
plan shape, backend fingerprint)`` so compilation cost amortises across
service requests; flipping numba availability or forcing a backend changes
the fingerprint and can never serve a stale kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.api.bias import SamplingProgram
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope
from repro.compiled.backends import (
    backend_fingerprint,
    compiled_enabled,
    select_backend,
)

__all__ = [
    "CompileDecision",
    "CompiledKernelSpec",
    "clear_kernel_cache",
    "compile_decision",
    "get_kernel_spec",
    "instantiate_kernel",
    "kernel_cache_stats",
    "plan_shape",
    "plan_step_tier",
]

#: Bias kinds the compiled tier implements.
KNOWN_KINDS = (
    "uniform",
    "weight_or_degree",
    "node2vec",
    "weight_or_uniform",
)

#: Bias kinds the fused walk kernel implements (the walk kernel has no
#: weight-or-uniform specialisation; those plans run on the compiled engine).
WALK_KINDS = ("uniform", "weight_or_degree", "node2vec")

#: Declared hook shapes the compiled engine implements.
KNOWN_UPDATE_SHAPES = ("unvisited", "keep_src_on_dead_end")
KNOWN_NEIGHBOR_COUNT_SHAPES = ("pool_capped",)
KNOWN_VERTEX_BIAS_SHAPES = ("degree_plus_one",)

#: Routes whose executor drives the engine depth loop directly, i.e. where
#: the fused walk kernel can take over whole steps.  The OOM and sharded
#: routes still compile -- through the engine kernel.
COMPILABLE_ROUTES = ("in_memory", "coalesced")


@dataclass(frozen=True)
class CompileDecision:
    """Outcome of the static eligibility check for one (program, config)."""

    eligible: bool
    #: The declared bias kind when eligible.
    kind: Optional[str] = None
    #: Why compilation was refused (``explain()`` surfaces it).
    reason: Optional[str] = None
    #: True when the plan can run on the fused walk kernel (route permitting);
    #: eligible non-walk shapes run on the compiled step engine.
    walk_shape: bool = False


@dataclass(frozen=True)
class CompiledKernelSpec:
    """What the cache stores: enough to instantiate a kernel per engine."""

    kind: str
    backend: str
    #: ``"walk"`` (fused depth-loop kernel) or ``"engine"`` (compiled step
    #: engine drives the step; no separate kernel object is instantiated).
    kernel: str = "walk"


# --------------------------------------------------------------------------- #
# Eligibility
# --------------------------------------------------------------------------- #
def compile_decision(
    program: SamplingProgram, config: SamplingConfig
) -> CompileDecision:
    """Static check: can this (program, config) run on the compiled tier?"""
    cls = type(program)
    kind = getattr(program, "compiled_bias", None)
    if kind is None:
        return CompileDecision(
            False, reason="program declares no compiled bias kind"
        )
    if kind not in KNOWN_KINDS:
        return CompileDecision(
            False, reason=f"unknown compiled bias kind {kind!r}"
        )
    if cls.accept is not SamplingProgram.accept:
        return CompileDecision(
            False, reason="program overrides accept (stateful hook)"
        )

    update_shape = getattr(program, "compiled_update", None)
    if update_shape is not None and update_shape not in KNOWN_UPDATE_SHAPES:
        return CompileDecision(
            False, reason=f"unknown compiled update shape {update_shape!r}"
        )
    if cls.update is not SamplingProgram.update and update_shape is None:
        return CompileDecision(
            False,
            reason="program overrides update without a declared shape",
        )

    ncount_shape = getattr(program, "compiled_neighbor_count", None)
    if (
        ncount_shape is not None
        and ncount_shape not in KNOWN_NEIGHBOR_COUNT_SHAPES
    ):
        return CompileDecision(
            False,
            reason=f"unknown compiled neighbor-count shape {ncount_shape!r}",
        )
    if (
        cls.neighbor_count is not SamplingProgram.neighbor_count
        and ncount_shape is None
    ):
        return CompileDecision(
            False,
            reason="program overrides neighbor_count without a declared shape",
        )

    vbias_shape = getattr(program, "compiled_vertex_bias", None)
    if vbias_shape is not None and vbias_shape not in KNOWN_VERTEX_BIAS_SHAPES:
        return CompileDecision(
            False,
            reason=f"unknown compiled vertex-bias shape {vbias_shape!r}",
        )
    if (
        cls.vertex_bias is not SamplingProgram.vertex_bias
        or cls.vertex_bias_batch is not SamplingProgram.vertex_bias_batch
    ) and vbias_shape is None:
        return CompileDecision(
            False,
            reason="program overrides vertex_bias without a declared shape",
        )

    walk_shape = (
        kind in WALK_KINDS
        and update_shape is None
        and ncount_shape is None
        and vbias_shape is None
        and config.scope is SelectionScope.PER_VERTEX
        and config.frontier_size == 0
        and config.with_replacement
        and config.pool_policy is PoolPolicy.NEXT_LAYER
        and not config.track_visited
    )
    return CompileDecision(True, kind=kind, walk_shape=walk_shape)


# --------------------------------------------------------------------------- #
# Kernel cache
# --------------------------------------------------------------------------- #
_KERNEL_CACHE: Dict[tuple, CompiledKernelSpec] = {}
_CACHE_HITS = 0
_CACHE_MISSES = 0


def plan_shape(plan) -> Tuple[str, str, int]:
    """The plan properties a cached kernel is specialised to.

    Instance *counts* are deliberately excluded (the kernel is shape-generic
    over walkers); what matters is the execution topology: the route, the
    warp-cursor regime and the fusion-group count (grouped vs global warp
    allocation compile to different cursor-advance code paths).
    """
    return (plan.route, plan.warp_cursors, len(plan.member_sizes))


def _cache_key(program: SamplingProgram, config: SamplingConfig, plan) -> tuple:
    cls = type(program)
    return (
        f"{cls.__module__}.{cls.__qualname__}",
        program.compiled_cache_token(),
        config,
        plan_shape(plan),
        backend_fingerprint(),
    )


def get_kernel_spec(
    program: SamplingProgram, config: SamplingConfig, plan
) -> CompiledKernelSpec:
    """The cached kernel spec for an eligible (program, config, plan).

    Raises ``ValueError`` when the combination is not compilable -- callers
    gate on :func:`compile_decision` / ``plan.step_tier`` first.
    """
    global _CACHE_HITS, _CACHE_MISSES
    key = _cache_key(program, config, plan)
    spec = _KERNEL_CACHE.get(key)
    if spec is not None:
        _CACHE_HITS += 1
        return spec
    decision = compile_decision(program, config)
    if not decision.eligible:
        raise ValueError(f"plan is not compilable: {decision.reason}")
    walk = decision.walk_shape and plan.route in COMPILABLE_ROUTES
    # The fused walk loop has a jittable scalar inner loop on every kind
    # (uniform draw + prefix search); the engine kernel reuses the segmented
    # numpy SELECT verbatim.
    backend = select_backend() if walk else "numpy"
    spec = CompiledKernelSpec(
        kind=decision.kind,
        backend=backend,
        kernel="walk" if walk else "engine",
    )
    _KERNEL_CACHE[key] = spec
    _CACHE_MISSES += 1
    return spec


def instantiate_kernel(spec: CompiledKernelSpec, engine):
    """Bind a cached spec to a live engine (RNG + warp cursors shared).

    Engine-kind specs return ``None``: the compiled step engine *is* the
    kernel, so the executor keeps driving the engine's own step methods.
    """
    if spec.kernel == "engine":
        return None
    from repro.compiled.walk_kernel import CompiledWalkKernel

    return CompiledWalkKernel(engine, kind=spec.kind, backend=spec.backend)


def kernel_cache_stats() -> Dict[str, int]:
    """Cache effectiveness counters (service metrics / tests)."""
    return {
        "entries": len(_KERNEL_CACHE),
        "hits": _CACHE_HITS,
        "misses": _CACHE_MISSES,
    }


def clear_kernel_cache() -> None:
    """Drop every cached kernel and reset the hit/miss counters."""
    global _CACHE_HITS, _CACHE_MISSES
    _KERNEL_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0


# --------------------------------------------------------------------------- #
# The planner's tier decision
# --------------------------------------------------------------------------- #
_PROBE_CACHE: Dict[str, Optional[SamplingProgram]] = {}


def _probe_program(algorithm: str) -> Optional[SamplingProgram]:
    """Registry probe for service plans that carry no program object."""
    if algorithm in _PROBE_CACHE:
        return _PROBE_CACHE[algorithm]
    from repro.algorithms.registry import ALGORITHM_REGISTRY

    info = ALGORITHM_REGISTRY.get(algorithm)
    program = info.program_factory() if info is not None else None
    _PROBE_CACHE[algorithm] = program
    return program


def plan_step_tier(
    config: SamplingConfig,
    route: str,
    predicted_time_s: float,
    *,
    program: Optional[SamplingProgram] = None,
    algorithm: Optional[str] = None,
    allow_compiled: Optional[bool] = None,
) -> Tuple[str, Optional[str], Optional[str]]:
    """Decide the step tier for one plan: ``(tier, backend, fallback_reason)``.

    ``allow_compiled`` is the request knob: ``False`` disables the tier,
    ``True`` forces it for eligible plans (skipping the cost comparison),
    ``None`` lets the calibrated cost model decide -- the comparison only
    applies to walk-kernel plans; engine-kind plans compile whenever eligible
    since the compiled engine does strictly less work per step.  The returned
    fallback reason is ``None`` exactly when the tier is ``"compiled"``.
    """
    if allow_compiled is False:
        return "interpreted", None, "compiled tier disabled by request"
    if not compiled_enabled():
        return "interpreted", None, "compiled tier disabled (REPRO_COMPILED)"
    if program is None and algorithm is not None:
        program = _probe_program(algorithm)
    if program is None:
        return "interpreted", None, "program unknown at plan time"
    decision = compile_decision(program, config)
    if not decision.eligible:
        return "interpreted", None, decision.reason
    walk = decision.walk_shape and route in COMPILABLE_ROUTES
    backend = select_backend() if walk else "numpy"
    if walk and allow_compiled is None:
        from repro.planner.calibration import load_calibration

        cal = load_calibration()
        interpreted_s = float(predicted_time_s) * cal.time_scale
        compiled_s = (
            cal.compiled_overhead_s + interpreted_s / cal.compiled_speedup
        )
        if compiled_s > interpreted_s:
            return (
                "interpreted",
                None,
                "interpretation predicted faster than compilation",
            )
    return "compiled", backend, None
