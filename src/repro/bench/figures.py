"""Per-figure experiment definitions.

One function per table / figure of the paper's evaluation section.  Each
returns a list of flat row dictionaries -- the data behind the corresponding
figure -- computed on the scaled-down workloads of
:mod:`repro.bench.workloads`.  Sweeps shared by several figures (the
in-memory collision study behind Figures 10-12, the out-of-memory study
behind Figures 13-15) are cached per process so the benchmark files can each
report their own figure without recomputing the sweep.

The benchmark modules under ``benchmarks/`` are thin wrappers that call these
functions, print the resulting tables and feed ``pytest-benchmark``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms import (
    BiasedNeighborSampling,
    BiasedRandomWalk,
    ForestFireSampling,
    LayerSampling,
    MultiDimensionalRandomWalk,
    UnbiasedNeighborSampling,
    run_random_walks,
)
from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.api.sampler import GraphSampler
from repro.baselines.graphsaint import GraphSAINTSampler
from repro.baselines.knightking import KnightKingEngine
from repro.bench.workloads import BenchmarkScale, DEFAULT_SCALE, get_graph
from repro.gpusim.device import Device, V100_SPEC
from repro.graph.generators import TABLE2_DATASETS
from repro.graph.properties import graph_stats
from repro.metrics.stats import kernel_time_std
from repro.oom.multigpu import run_multi_gpu_sampling, run_multi_gpu_walks
from repro.oom.scheduler import OutOfMemoryConfig, OutOfMemorySampler

__all__ = [
    "table1_design_space",
    "table2_datasets",
    "fig09_baseline_comparison",
    "fig10_inmemory_speedups",
    "fig11_iteration_counts",
    "fig12_search_reduction",
    "fig13_oom_speedups",
    "fig14_kernel_imbalance",
    "fig15_partition_transfers",
    "fig16_neighborsize_and_instances",
    "fig17_multi_gpu_scaling",
]

Row = Dict[str, object]

#: The four applications of the in-memory optimisation study (Fig. 10-12).
_INMEM_APPS = (
    ("biased_neighbor_sampling", BiasedNeighborSampling),
    ("forest_fire_sampling", ForestFireSampling),
    ("layer_sampling", LayerSampling),
    ("unbiased_neighbor_sampling", UnbiasedNeighborSampling),
)

#: The four applications of the out-of-memory study (Fig. 13-15).
_OOM_APPS = (
    ("biased_neighbor_sampling", BiasedNeighborSampling),
    ("biased_random_walk", BiasedRandomWalk),
    ("forest_fire_sampling", ForestFireSampling),
    ("unbiased_neighbor_sampling", UnbiasedNeighborSampling),
)

#: The collision-mitigation variants compared by Fig. 10 (strategy, detector).
_INMEM_VARIANTS = (
    ("repeated", "repeated", "linear"),
    ("updated", "updated", "linear"),
    ("bipartite", "bipartite", "linear"),
    ("bipartite+bitmap", "bipartite", "strided_bitmap"),
)

#: The out-of-memory configurations compared by Fig. 13.
_OOM_VARIANTS = (
    ("baseline", OutOfMemoryConfig.baseline),
    ("BA", OutOfMemoryConfig.batched_only),
    ("BA+WS", OutOfMemoryConfig.batched_scheduled),
    ("BA+WS+BAL", OutOfMemoryConfig.fully_optimized),
)


# --------------------------------------------------------------------------- #
# Tables I and II
# --------------------------------------------------------------------------- #
def table1_design_space(scale: BenchmarkScale = DEFAULT_SCALE) -> List[Row]:
    """Table I: every registered algorithm, expressed and run through the API."""
    graph = get_graph("AM", weighted=True, scale=scale)
    rows: List[Row] = []
    for name, info in sorted(ALGORITHM_REGISTRY.items()):
        program = info.program_factory()
        config = info.config_factory(depth=2, seed=scale.seed)
        seeds: List = list(range(8))
        if name == "multidimensional_random_walk":
            seeds = [list(range(8))]
        result = GraphSampler(graph, program, config).run(seeds)
        rows.append(
            {
                "algorithm": name,
                "bias": info.bias,
                "neighbors": info.neighbor_shape,
                "scope": info.scope,
                "random_walk": info.is_random_walk,
                "sampled_edges": result.total_sampled_edges,
            }
        )
    return rows


def table2_datasets(scale: BenchmarkScale = DEFAULT_SCALE) -> List[Row]:
    """Table II: paper dataset statistics vs the generated stand-ins."""
    rows: List[Row] = []
    for abbr in scale.all_graphs:
        spec = TABLE2_DATASETS[abbr]
        stats = graph_stats(get_graph(abbr, scale=scale))
        rows.append(
            {
                "dataset": abbr,
                "name": spec.name,
                "paper_vertices": spec.paper_vertices,
                "paper_edges": spec.paper_edges,
                "paper_avg_degree": spec.paper_avg_degree,
                "repro_vertices": stats.num_vertices,
                "repro_edges": stats.num_edges,
                "repro_avg_degree": round(stats.avg_degree, 2),
                "repro_max_degree": stats.max_degree,
                "degree_gini": round(stats.degree_gini, 3),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 9: C-SAW vs KnightKing and GraphSAINT
# --------------------------------------------------------------------------- #
@lru_cache(maxsize=4)
def fig09_baseline_comparison(scale: BenchmarkScale = DEFAULT_SCALE) -> Tuple[Row, ...]:
    """Fig. 9: SEPS of C-SAW (1 and 6 GPUs) vs KnightKing and GraphSAINT."""
    rows: List[Row] = []
    rng = np.random.default_rng(scale.seed)
    for abbr in scale.all_graphs:
        graph = get_graph(abbr, weighted=True, scale=scale)
        seeds = rng.integers(0, graph.num_vertices, size=64)

        # Panel (a): biased random walk vs KnightKing.
        knightking = KnightKingEngine(graph, biased=True, seed=scale.seed)
        kk = knightking.run_walks(seeds, scale.walk_length, num_walkers=scale.walk_instances)
        csaw1 = run_multi_gpu_walks(
            graph, seeds, num_walkers=scale.walk_instances,
            walk_length=scale.walk_length, num_gpus=1, biased=True, seed=scale.seed,
        )
        csaw6 = run_multi_gpu_walks(
            graph, seeds, num_walkers=scale.walk_instances,
            walk_length=scale.walk_length, num_gpus=6, biased=True, seed=scale.seed,
        )
        rows.append(
            {
                "panel": "a:biased_random_walk",
                "graph": abbr,
                "knightking_mseps": kk.seps() / 1e6,
                "csaw_1gpu_mseps": csaw1.seps() / 1e6,
                "csaw_6gpu_mseps": csaw6.seps() / 1e6,
                "speedup_1gpu": csaw1.seps() / kk.seps() if kk.seps() else 0.0,
                "speedup_6gpu": csaw6.seps() / kk.seps() if kk.seps() else 0.0,
            }
        )

        # Panel (b): multi-dimensional random walk vs GraphSAINT.
        saint = GraphSAINTSampler(graph, seed=scale.seed)
        gs = saint.run(
            num_instances=scale.sampling_instances,
            frontier_size=scale.frontier_size,
            steps=scale.frontier_steps,
        )
        program = MultiDimensionalRandomWalk()
        pools = [
            rng.integers(0, graph.num_vertices, size=scale.frontier_size).tolist()
            for _ in range(scale.sampling_instances)
        ]
        config = program.default_config(depth=scale.frontier_steps, seed=scale.seed)
        csaw = GraphSampler(graph, program, config).run(pools)
        rows.append(
            {
                "panel": "b:multidimensional_random_walk",
                "graph": abbr,
                "graphsaint_mseps": gs.seps() / 1e6,
                "csaw_1gpu_mseps": csaw.seps() / 1e6,
                "speedup_1gpu": csaw.seps() / gs.seps() if gs.seps() else 0.0,
            }
        )
    return tuple(rows)


# --------------------------------------------------------------------------- #
# Figures 10-12: in-memory optimisation study (shared sweep)
# --------------------------------------------------------------------------- #
@lru_cache(maxsize=4)
def _inmemory_sweep(scale: BenchmarkScale = DEFAULT_SCALE) -> Dict[Tuple[str, str, str], Dict[str, float]]:
    """Run every (graph, app, variant) cell of the in-memory study once."""
    results: Dict[Tuple[str, str, str], Dict[str, float]] = {}
    for abbr in scale.in_memory_graphs:
        graph = get_graph(abbr, weighted=True, weight_distribution="heavy_tailed", scale=scale)
        seeds = list(range(min(scale.sampling_instances, graph.num_vertices)))
        for app_name, app_factory in _INMEM_APPS:
            for variant, strategy, detector in _INMEM_VARIANTS:
                program = app_factory()
                config = program.default_config(
                    depth=2, neighbor_size=4, strategy=strategy, detector=detector,
                    seed=scale.seed,
                )
                result = GraphSampler(graph, program, config).run(seeds)
                results[(abbr, app_name, variant)] = {
                    "kernel_time": result.kernel_time(),
                    "mean_iterations": result.mean_iterations(),
                    "collision_probes": float(result.cost.collision_probes),
                    "atomic_conflicts": float(result.cost.atomic_conflicts),
                    "sampled_edges": float(result.total_sampled_edges),
                }
    return results


def fig10_inmemory_speedups(scale: BenchmarkScale = DEFAULT_SCALE) -> List[Row]:
    """Fig. 10: speedup of each collision-mitigation variant over repeated sampling."""
    sweep = _inmemory_sweep(scale)
    rows: List[Row] = []
    for abbr in scale.in_memory_graphs:
        for app_name, _ in _INMEM_APPS:
            base = sweep[(abbr, app_name, "repeated")]["kernel_time"]
            row: Row = {"graph": abbr, "application": app_name}
            for variant, _, _ in _INMEM_VARIANTS:
                time = sweep[(abbr, app_name, variant)]["kernel_time"]
                row[f"speedup_{variant}"] = base / time if time > 0 else 0.0
            rows.append(row)
    return rows


def fig11_iteration_counts(scale: BenchmarkScale = DEFAULT_SCALE) -> List[Row]:
    """Fig. 11: mean do-while iterations with and without bipartite region search."""
    sweep = _inmemory_sweep(scale)
    rows: List[Row] = []
    for abbr in scale.in_memory_graphs:
        for app_name, _ in _INMEM_APPS:
            baseline = sweep[(abbr, app_name, "repeated")]["mean_iterations"]
            bipartite = sweep[(abbr, app_name, "bipartite")]["mean_iterations"]
            rows.append(
                {
                    "graph": abbr,
                    "application": app_name,
                    "iterations_baseline": baseline,
                    "iterations_bipartite": bipartite,
                    "reduction": baseline / bipartite if bipartite > 0 else 0.0,
                }
            )
    return rows


def fig12_search_reduction(scale: BenchmarkScale = DEFAULT_SCALE) -> List[Row]:
    """Fig. 12: collision-search count of the bitmap relative to the linear baseline."""
    sweep = _inmemory_sweep(scale)
    rows: List[Row] = []
    for abbr in scale.in_memory_graphs:
        for app_name, _ in _INMEM_APPS:
            baseline = sweep[(abbr, app_name, "bipartite")]["collision_probes"]
            bitmap = sweep[(abbr, app_name, "bipartite+bitmap")]["collision_probes"]
            rows.append(
                {
                    "graph": abbr,
                    "application": app_name,
                    "searches_baseline": int(baseline),
                    "searches_bitmap": int(bitmap),
                    "ratio": bitmap / baseline if baseline > 0 else 0.0,
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Figures 13-15: out-of-memory optimisation study (shared sweep)
# --------------------------------------------------------------------------- #
#: Device used for the out-of-memory study.  Effective concurrency is reduced
#: in proportion to the scaled-down workloads so that thread-block allocation
#: (Fig. 14) remains a binding constraint, as it is at paper scale.
_OOM_SPEC = V100_SPEC.scaled(concurrent_warps=128)


@lru_cache(maxsize=4)
def _oom_sweep(scale: BenchmarkScale = DEFAULT_SCALE) -> Dict[Tuple[str, str, str], Dict[str, float]]:
    """Run every (graph, app, variant) cell of the out-of-memory study once."""
    results: Dict[Tuple[str, str, str], Dict[str, float]] = {}
    for abbr in scale.all_graphs:
        graph = get_graph(abbr, weighted=True, weight_distribution="heavy_tailed", scale=scale)
        seeds = list(range(min(scale.oom_instances, graph.num_vertices)))
        for app_name, app_factory in _OOM_APPS:
            for variant, oom_factory in _OOM_VARIANTS:
                program = app_factory()
                config = program.default_config(
                    depth=scale.oom_depth, neighbor_size=2, seed=scale.seed
                )
                sampler = OutOfMemorySampler(
                    graph,
                    program,
                    config,
                    oom_factory(),
                    device=Device(_OOM_SPEC),
                )
                result = sampler.run(seeds)
                results[(abbr, app_name, variant)] = {
                    "makespan": result.makespan,
                    "partition_transfers": float(result.partition_transfers),
                    "stream_imbalance": result.stream_imbalance(),
                    "kernel_time_std": kernel_time_std(result.kernel_times),
                    "sampled_edges": float(result.total_sampled_edges),
                    "rounds": float(result.rounds),
                }
    return results


def fig13_oom_speedups(scale: BenchmarkScale = DEFAULT_SCALE) -> List[Row]:
    """Fig. 13: speedup of BA / BA+WS / BA+WS+BAL over the unoptimised baseline."""
    sweep = _oom_sweep(scale)
    rows: List[Row] = []
    for abbr in scale.all_graphs:
        for app_name, _ in _OOM_APPS:
            base = sweep[(abbr, app_name, "baseline")]["makespan"]
            row: Row = {"graph": abbr, "application": app_name}
            for variant, _ in _OOM_VARIANTS:
                makespan = sweep[(abbr, app_name, variant)]["makespan"]
                row[f"speedup_{variant}"] = base / makespan if makespan > 0 else 0.0
            rows.append(row)
    return rows


def fig14_kernel_imbalance(scale: BenchmarkScale = DEFAULT_SCALE) -> List[Row]:
    """Fig. 14: workload imbalance across concurrent kernels per configuration."""
    sweep = _oom_sweep(scale)
    rows: List[Row] = []
    for abbr in scale.all_graphs:
        for app_name, _ in _OOM_APPS:
            row: Row = {"graph": abbr, "application": app_name}
            for variant, _ in _OOM_VARIANTS:
                row[f"imbalance_{variant}"] = sweep[(abbr, app_name, variant)]["stream_imbalance"]
            rows.append(row)
    return rows


def fig15_partition_transfers(scale: BenchmarkScale = DEFAULT_SCALE) -> List[Row]:
    """Fig. 15: partition transfer counts, active-order vs workload-aware scheduling."""
    sweep = _oom_sweep(scale)
    rows: List[Row] = []
    for abbr in scale.all_graphs:
        for app_name, _ in _OOM_APPS:
            active = sweep[(abbr, app_name, "BA")]["partition_transfers"]
            aware = sweep[(abbr, app_name, "BA+WS")]["partition_transfers"]
            rows.append(
                {
                    "graph": abbr,
                    "application": app_name,
                    "transfers_active": int(active),
                    "transfers_workload_aware": int(aware),
                    "reduction": active / aware if aware > 0 else 0.0,
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Figure 16: NeighborSize and instance-count sweeps
# --------------------------------------------------------------------------- #
@lru_cache(maxsize=4)
def fig16_neighborsize_and_instances(scale: BenchmarkScale = DEFAULT_SCALE) -> Tuple[Row, ...]:
    """Fig. 16: biased neighbor sampling time vs NeighborSize and vs #instances."""
    rows: List[Row] = []
    for abbr in scale.all_graphs:
        graph = get_graph(abbr, weighted=True, scale=scale)
        program = BiasedNeighborSampling()
        seeds = list(range(min(scale.sampling_instances, graph.num_vertices)))

        for neighbor_size in scale.neighbor_sizes:
            config = program.default_config(depth=2, neighbor_size=neighbor_size, seed=scale.seed)
            result = GraphSampler(graph, program, config).run(seeds)
            rows.append(
                {
                    "panel": "a:neighbor_size",
                    "graph": abbr,
                    "neighbor_size": neighbor_size,
                    "instances": len(seeds),
                    "sampling_time_ms": result.kernel_time() * 1e3,
                    "sampled_edges": result.total_sampled_edges,
                }
            )

        for instances in scale.instance_sweep:
            config = program.default_config(
                depth=2, neighbor_size=max(scale.neighbor_sizes), seed=scale.seed
            )
            seed_list = list(range(min(instances, graph.num_vertices)))
            result = GraphSampler(graph, program, config).run(
                seed_list, num_instances=instances
            )
            rows.append(
                {
                    "panel": "b:instances",
                    "graph": abbr,
                    "neighbor_size": max(scale.neighbor_sizes),
                    "instances": instances,
                    "sampling_time_ms": result.kernel_time() * 1e3,
                    "sampled_edges": result.total_sampled_edges,
                }
            )
    return tuple(rows)


# --------------------------------------------------------------------------- #
# Figure 17: multi-GPU scalability
# --------------------------------------------------------------------------- #
#: Device spec for the scalability study (see _OOM_SPEC for the rationale of
#: reducing effective concurrency alongside the workload scale).
_SCALING_SPEC = V100_SPEC.scaled(concurrent_warps=256)


@lru_cache(maxsize=4)
def fig17_multi_gpu_scaling(scale: BenchmarkScale = DEFAULT_SCALE) -> Tuple[Row, ...]:
    """Fig. 17: biased neighbor sampling speedup from 1 to 6 GPUs."""
    rows: List[Row] = []
    graphs = scale.in_memory_graphs[: max(4, len(scale.in_memory_graphs) // 2)]
    for abbr in graphs:
        graph = get_graph(abbr, weighted=True, scale=scale)
        program = BiasedNeighborSampling()
        config = program.default_config(depth=2, neighbor_size=2, seed=scale.seed)
        seeds = np.arange(min(256, graph.num_vertices))
        for instances in scale.scaling_instances:
            baseline = None
            for num_gpus in scale.gpu_counts:
                result = run_multi_gpu_sampling(
                    graph,
                    program,
                    config,
                    seeds,
                    num_instances=instances,
                    num_gpus=num_gpus,
                    device_specs=[_SCALING_SPEC] * num_gpus,
                )
                makespan = result.makespan(_SCALING_SPEC)
                if num_gpus == scale.gpu_counts[0]:
                    baseline = makespan
                rows.append(
                    {
                        "graph": abbr,
                        "instances": instances,
                        "gpus": num_gpus,
                        "makespan_ms": makespan * 1e3,
                        "speedup": baseline / makespan if makespan > 0 else 0.0,
                        "seps": result.seps(_SCALING_SPEC),
                    }
                )
    return tuple(rows)
