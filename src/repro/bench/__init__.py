"""Benchmark harness: workload definitions and per-figure experiments.

* :mod:`~repro.bench.harness` -- table formatting, CSV output and the
  experiment-row conventions shared by every benchmark.
* :mod:`~repro.bench.workloads` -- the scaled-down workload parameters
  (datasets, instance counts, walk lengths) used to regenerate the paper's
  tables and figures on a laptop-sized budget.
* :mod:`~repro.bench.figures` -- one function per table/figure of the paper's
  evaluation section; each returns the rows the corresponding figure plots.
  Results are cached per-process so benchmarks that share a sweep (e.g.
  Figures 10, 11 and 12) only run it once.
"""

from repro.bench.harness import ExperimentTable, format_table, write_csv
from repro.bench.workloads import BenchmarkScale, SMALL_SCALE, DEFAULT_SCALE
from repro.bench import figures

__all__ = [
    "ExperimentTable",
    "format_table",
    "write_csv",
    "BenchmarkScale",
    "SMALL_SCALE",
    "DEFAULT_SCALE",
    "figures",
]
