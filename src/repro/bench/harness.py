"""Experiment-table formatting and persistence.

Every per-figure experiment in :mod:`repro.bench.figures` returns a list of
flat dictionaries (one per figure bar / line point).  The helpers here render
them as aligned text tables -- the "same rows the paper reports" -- and write
them to CSV files under ``benchmarks/results/`` so EXPERIMENTS.md can quote
them.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = ["ExperimentTable", "format_table", "write_csv"]

Row = Mapping[str, Union[str, int, float]]


def _format_value(value: Union[str, int, float]) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Row], *, title: Optional[str] = None) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    if not rows:
        return f"{title or 'experiment'}: (no rows)"
    columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(" | ".join(col.ljust(widths[i]) for i, col in enumerate(columns)))
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def write_csv(rows: Sequence[Row], path: Union[str, os.PathLike]) -> Path:
    """Write rows to a CSV file, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("", encoding="utf-8")
        return path
    columns = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in columns})
    return path


@dataclass
class ExperimentTable:
    """A named collection of result rows with printing and CSV persistence."""

    name: str
    rows: List[Dict[str, Union[str, int, float]]] = field(default_factory=list)

    def add(self, **row: Union[str, int, float]) -> None:
        """Append one row."""
        self.rows.append(dict(row))

    def extend(self, rows: Sequence[Row]) -> None:
        """Append several rows."""
        self.rows.extend(dict(r) for r in rows)

    def render(self) -> str:
        """Render as a text table."""
        return format_table(self.rows, title=self.name)

    def show(self) -> None:
        """Print the table to stdout."""
        print(self.render())

    def save(self, directory: Union[str, os.PathLike]) -> Path:
        """Write the table to ``<directory>/<name>.csv``."""
        return write_csv(self.rows, Path(directory) / f"{self.name}.csv")

    def column(self, key: str) -> List[Union[str, int, float]]:
        """All values of one column, in row order."""
        return [row[key] for row in self.rows]
