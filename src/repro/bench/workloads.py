"""Workload scales for the benchmark suite.

The paper's evaluation runs 2,000-16,000 sampling instances over graphs with
up to 1.8 billion edges on V100 GPUs.  The reproduction executes the same
experiments on synthetic stand-in graphs roughly 1/1000 the size, with
instance counts reduced proportionally, so the entire suite finishes in a few
minutes of host time while preserving every comparison's shape.

Two scales are provided:

* :data:`SMALL_SCALE` -- used by the test suite and CI-style smoke runs;
* :data:`DEFAULT_SCALE` -- used by ``pytest benchmarks/ --benchmark-only`` to
  regenerate the tables in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.csr import CSRGraph
from repro.graph.generators import IN_MEMORY_DATASETS, ALL_DATASETS, generate_dataset

__all__ = ["BenchmarkScale", "SMALL_SCALE", "DEFAULT_SCALE", "get_graph"]


@dataclass(frozen=True)
class BenchmarkScale:
    """Scaled-down experiment parameters (paper values in comments)."""

    #: Graphs used for in-memory experiments (paper: the 8 Table II graphs
    #: that fit in GPU memory).
    in_memory_graphs: Tuple[str, ...] = tuple(IN_MEMORY_DATASETS)
    #: Graphs used for out-of-memory experiments (paper: all 10).
    all_graphs: Tuple[str, ...] = tuple(ALL_DATASETS)
    #: Random-walk instance count (paper: 4,000).  Kept above the simulated
    #: GPU's concurrent-warp count so the 6-GPU configuration of Fig. 9 still
    #: has enough parallel work per device to beat the single GPU.
    walk_instances: int = 1200
    #: Random-walk length (paper: 2,000 steps).
    walk_length: int = 40
    #: Traversal-sampling instance count (paper: 2,000).
    sampling_instances: int = 100
    #: Multi-dimensional random-walk frontier size (paper: 2,000).
    frontier_size: int = 500
    #: Multi-dimensional random-walk steps per instance.
    frontier_steps: int = 16
    #: Out-of-memory sampling instance count.
    oom_instances: int = 120
    #: Out-of-memory sampling depth.
    oom_depth: int = 3
    #: NeighborSize sweep (paper: 1, 2, 4, 8).
    neighbor_sizes: Tuple[int, ...] = (1, 2, 4, 8)
    #: Instance-count sweep (paper: 2k, 4k, 8k, 16k).
    instance_sweep: Tuple[int, ...] = (50, 100, 200, 400)
    #: Multi-GPU instance counts (paper: 2,000 and 8,000).
    scaling_instances: Tuple[int, ...] = (400, 1600)
    #: GPU counts for the scalability study (paper: 1-6).
    gpu_counts: Tuple[int, ...] = (1, 2, 4, 6)
    #: Graph scale factor applied to every generated dataset.
    graph_scale: float = 1.0
    #: Seed base for dataset generation and samplers.
    seed: int = 7


SMALL_SCALE = BenchmarkScale(
    in_memory_graphs=("AM", "RE", "WG"),
    all_graphs=("AM", "RE", "WG", "TW"),
    walk_instances=100,
    walk_length=20,
    sampling_instances=40,
    frontier_size=100,
    frontier_steps=8,
    oom_instances=60,
    oom_depth=2,
    neighbor_sizes=(1, 2, 4),
    instance_sweep=(20, 40, 80),
    scaling_instances=(100, 400),
    gpu_counts=(1, 2, 4),
    graph_scale=0.5,
)

DEFAULT_SCALE = BenchmarkScale()

_GRAPH_CACHE: Dict[Tuple[str, bool, str, float, int], CSRGraph] = {}


def get_graph(
    abbr: str,
    *,
    weighted: bool = False,
    weight_distribution: str = "uniform",
    scale: BenchmarkScale = DEFAULT_SCALE,
) -> CSRGraph:
    """Generate (and cache) the stand-in graph for a dataset abbreviation."""
    key = (abbr, weighted, weight_distribution, scale.graph_scale, scale.seed)
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        graph = generate_dataset(
            abbr,
            seed=scale.seed,
            scale_factor=scale.graph_scale,
            weighted=weighted,
            weight_distribution=weight_distribution,
        )
        _GRAPH_CACHE[key] = graph
    return graph
