"""Shard transports: in-process shard array or one OS process per shard.

Both transports drive the same :class:`~repro.distributed.shard.
ShardRuntime` through the same four verbs -- ``admit`` / ``step_all`` /
``collect`` / ``close`` -- so the coordinator is transport-agnostic and the
bit-compatibility tests can assert the two produce identical results.

* :class:`InProcessTransport` keeps the runtimes as plain objects.  This is
  the service's route (a worker serves a sharded graph without spawning
  grandchild processes) and the benchmark configuration.
* :class:`MultiprocessTransport` spawns one OS process per shard and
  publishes the graph once through the service's shared-memory store
  (:mod:`repro.service.store`): every shard process maps the same physical
  CSR copy zero-copy, exactly like service workers do.  Commands and walker
  envelopes travel over per-shard pipes; ``step_all`` is the per-depth
  barrier.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.config import SamplingConfig
from repro.distributed.router import WalkerEnvelope
from repro.distributed.shard import ShardReport, ShardRuntime
from repro.graph.csr import CSRGraph
from repro.service.store import SharedGraphHandle, SharedGraphStore, attach
from repro.telemetry import profiler as _profiler
from repro.telemetry import trace as _trace

__all__ = ["ClusterTransportError", "InProcessTransport", "MultiprocessTransport"]


class ClusterTransportError(RuntimeError):
    """A shard failed; the shard-side traceback is attached."""


class InProcessTransport:
    """All shard runtimes live in the calling process."""

    name = "in_process"

    def __init__(
        self,
        graph: CSRGraph,
        bounds: np.ndarray,
        algorithm: str,
        program_kwargs: Optional[dict],
        config: SamplingConfig,
    ):
        self.shards = [
            ShardRuntime(i, graph, bounds, algorithm, program_kwargs, config)
            for i in range(len(bounds) - 1)
        ]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def admit(self, placement: Dict[int, List[WalkerEnvelope]]) -> None:
        for dst in sorted(placement):
            self.shards[dst].admit(placement[dst])

    def step_all(
        self, depth: int
    ) -> Tuple[List[Dict[int, List[WalkerEnvelope]]], List[int]]:
        """Step every shard once; returns (outboxes, per-shard active counts)."""
        outboxes = [shard.step(depth) for shard in self.shards]
        actives = [shard.active_count() for shard in self.shards]
        return outboxes, actives

    def collect(self) -> List[ShardReport]:
        return [shard.collect() for shard in self.shards]

    def close(self) -> None:
        self.shards = []


# --------------------------------------------------------------------------- #
# Multiprocess transport
# --------------------------------------------------------------------------- #
def _shard_main(
    conn,
    shard_index: int,
    bounds: np.ndarray,
    algorithm: str,
    program_kwargs: Optional[dict],
    config: SamplingConfig,
    handle: SharedGraphHandle,
    profile: bool = False,
) -> None:
    """Shard process: map the shared graph, loop on pipe commands."""
    # A forked shard inherits the coordinator's span buffer; those records
    # belong to the parent and must not ship home again as duplicates.
    _trace.clear()
    # The profiler's runtime switch does not survive a spawn, so the
    # coordinator ships its state explicitly; inherited accumulators (fork
    # contexts) belong to the parent and must not ship home again.
    _profiler.clear()
    if profile:
        _profiler.enable()
    mapping = None
    try:
        try:
            mapping = attach(handle)
            runtime = ShardRuntime(
                shard_index, mapping.graph, bounds, algorithm, program_kwargs, config
            )
        except Exception:
            # Fail loudly over the pipe: the coordinator's next receive gets
            # the construction traceback instead of a bare EOF.
            conn.send(("error", traceback.format_exc(limit=8)))
            return
        while True:
            command, payload = conn.recv()
            try:
                if command == "admit":
                    runtime.admit(payload)
                    conn.send(("ok", None))
                elif command == "step":
                    outbox = runtime.step(payload)
                    conn.send(("ok", (outbox, runtime.active_count())))
                elif command == "collect":
                    report = runtime.collect()
                    # Ship this process's finished spans and profile home
                    # with the report; the coordinator re-ingests them so
                    # the request's telemetry stays in one buffer.
                    report.spans = _trace.drain()
                    report.profile = _profiler.drain()
                    conn.send(("ok", report))
                elif command == "stop":
                    conn.send(("ok", None))
                    return
                else:  # pragma: no cover - protocol misuse
                    conn.send(("error", f"unknown command {command!r}"))
            except Exception:
                conn.send(("error", traceback.format_exc(limit=8)))
    except (EOFError, OSError):  # pragma: no cover - coordinator went away
        pass
    finally:
        if mapping is not None:
            mapping.close()
        conn.close()


class MultiprocessTransport:
    """One OS process per shard, graph shared through :mod:`service.store`."""

    name = "multiprocess"

    def __init__(
        self,
        graph: CSRGraph,
        bounds: np.ndarray,
        algorithm: str,
        program_kwargs: Optional[dict],
        config: SamplingConfig,
        *,
        mp_context: str = "spawn",
        store: Optional[SharedGraphStore] = None,
        graph_name: str = "cluster-graph",
    ):
        # Resolve the context before touching shared memory: an unknown
        # mp_context must not leave published segments behind.
        ctx = multiprocessing.get_context(mp_context)
        self._store = store if store is not None else SharedGraphStore()
        self._owns_store = store is None
        self._graph_name = graph_name
        if graph_name in self._store.names():
            handle = self._store.handle(graph_name)
            self._owns_graph = False
            # The coordinator validated seeds and computed bounds against
            # `graph`; shards must map that same graph, not whatever else
            # was published under the name.
            if (
                handle.num_vertices != graph.num_vertices
                or handle.num_edges != graph.num_edges
            ):
                raise ValueError(
                    f"stored graph {graph_name!r} "
                    f"({handle.num_vertices} vertices, {handle.num_edges} "
                    f"edges) does not match the cluster's graph "
                    f"({graph.num_vertices} vertices, {graph.num_edges} edges)"
                )
        else:
            handle = self._store.put(graph_name, graph)
            self._owns_graph = True
        self._conns = []
        self._procs = []
        try:
            for index in range(len(bounds) - 1):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_main,
                    args=(
                        child,
                        index,
                        np.asarray(bounds, dtype=np.int64),
                        algorithm,
                        dict(program_kwargs or {}),
                        config,
                        handle,
                        _profiler.enabled(),
                    ),
                    daemon=True,
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
        except Exception:
            self.close()
            raise

    @property
    def num_shards(self) -> int:
        return len(self._procs)

    # ------------------------------------------------------------------ #
    def _send(self, shard: int, command: str, payload) -> None:
        try:
            self._conns[shard].send((command, payload))
        except (BrokenPipeError, OSError) as exc:
            # The shard died before reading; surface whatever it managed to
            # report (its init traceback) over the still-readable end --
            # _receive either raises with that traceback or with the death.
            self._receive(shard)
            raise ClusterTransportError(  # pragma: no cover - receive raised
                f"shard {shard} process died before accepting {command!r}"
            ) from exc

    def _receive(self, shard: int) -> object:
        try:
            status, payload = self._conns[shard].recv()
        except (EOFError, OSError) as exc:
            raise ClusterTransportError(
                f"shard {shard} process died (pid "
                f"{self._procs[shard].pid}, exitcode "
                f"{self._procs[shard].exitcode})"
            ) from exc
        if status != "ok":
            raise ClusterTransportError(f"shard {shard} failed:\n{payload}")
        return payload

    # ------------------------------------------------------------------ #
    def admit(self, placement: Dict[int, List[WalkerEnvelope]]) -> None:
        targets = sorted(placement)
        for dst in targets:
            self._send(dst, "admit", placement[dst])
        for dst in targets:
            self._receive(dst)

    def step_all(
        self, depth: int
    ) -> Tuple[List[Dict[int, List[WalkerEnvelope]]], List[int]]:
        """Barrier step: every shard advances one depth concurrently."""
        for shard in range(self.num_shards):
            self._send(shard, "step", depth)
        outboxes: List[Dict[int, List[WalkerEnvelope]]] = []
        actives: List[int] = []
        for shard in range(self.num_shards):
            outbox, active = self._receive(shard)
            outboxes.append(outbox)
            actives.append(active)
        return outboxes, actives

    def collect(self) -> List[ShardReport]:
        for shard in range(self.num_shards):
            self._send(shard, "collect", None)
        reports = [self._receive(shard) for shard in range(self.num_shards)]
        for report in reports:
            if report.spans:
                _trace.ingest(report.spans)
                report.spans = []
            if report.profile:
                _profiler.ingest(report.profile)
                report.profile = {}
        return reports

    def close(self) -> None:
        for shard, conn in enumerate(self._conns):
            try:
                self._send(shard, "stop", None)
                self._receive(shard)
            except (ClusterTransportError, OSError):
                pass
            finally:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck shard
                proc.terminate()
                proc.join(timeout=1.0)
        self._conns = []
        self._procs = []
        if self._owns_store:
            self._store.close()
        elif self._owns_graph:
            self._store.release(self._graph_name)
