"""Cross-shard walker migration: envelopes, bucketing, exchange.

The sharded cluster follows KnightKing's walker-migration model: a sampling
instance ("walker") lives on the shard that owns its current frontier, and
when a depth step moves the frontier into another shard's vertex range the
walker is shipped there before the next step.  Everything the destination
shard needs travels in one :class:`WalkerEnvelope`:

* the :class:`~repro.api.instance.InstanceState` itself (frontier pool,
  sampled edges, visited set, ``prev_vertex`` -- node2vec's dynamic bias
  keeps working after a hop);
* the instance's private *warp cursor* -- the next warp id of its
  per-instance warp stream.  Warp ids are mixed into the counter RNG's
  stream coordinates, so carrying the cursor is what makes selection
  independent of where a step executes (the shard-count invariance
  contract, see ``docs/distributed.md``);
* the per-selection iteration counts accumulated so far (a result field);
* for programs whose hooks consume a private RNG stream
  (``supports_coalescing = False``: forest fire, Metropolis-Hastings,
  jump/restart) the per-walker program object itself, mid-stream state and
  all.  Stateless programs leave this ``None`` and use the shard-resident
  shared program.

Bucketing is vectorised: one :func:`~repro.graph.partition.range_owners`
call maps every migrating walker's routing vertex to its destination shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.api.bias import SamplingProgram
from repro.api.instance import InstanceState
from repro.graph.partition import range_owners

__all__ = [
    "WalkerEnvelope",
    "routing_vertex",
    "bucket_by_shard",
    "MigrationRouter",
]


@dataclass
class WalkerEnvelope:
    """One migrating walker: instance state plus its execution context."""

    instance: InstanceState
    #: Next warp id of the instance's private warp stream.
    warp_cursor: int = 0
    #: Per-selection do-while iteration counts accumulated so far.
    iterations: List[int] = field(default_factory=list)
    #: Stateful program travelling with the walker (``None`` = use the
    #: shard's shared program; see the module docstring).
    program: Optional[SamplingProgram] = None
    #: Telemetry trace context (``repro.telemetry.trace.TraceContext``)
    #: riding along so shard runtimes join the request's span tree;
    #: ``None`` whenever tracing is inactive.
    trace_ctx: Optional[tuple] = None

    @property
    def instance_id(self) -> int:
        """Cluster-global id of the enclosed instance."""
        return int(self.instance.instance_id)


def routing_vertex(instance: InstanceState) -> int:
    """The vertex that decides which shard advances ``instance`` next.

    Single-vertex (walk-style) frontiers route exactly like KnightKing
    walkers -- to the shard owning the walker's current vertex.  Wider
    frontier pools are coordinated by the shard owning the first pool
    vertex; the rule only needs to be a deterministic function of instance
    state so placement is identical for every shard count.
    """
    return int(instance.frontier_pool[0])


def bucket_by_shard(
    envelopes: Sequence[WalkerEnvelope],
    bounds: np.ndarray,
    *,
    stride: Optional[int] = None,
) -> Dict[int, List[WalkerEnvelope]]:
    """Group envelopes by destination shard (one vectorised owner lookup)."""
    if not envelopes:
        return {}
    vertices = np.fromiter(
        (routing_vertex(env.instance) for env in envelopes),
        dtype=np.int64,
        count=len(envelopes),
    )
    owners = range_owners(bounds, vertices, stride=stride)
    buckets: Dict[int, List[WalkerEnvelope]] = {}
    for dst in np.unique(owners):
        indices = np.nonzero(owners == dst)[0]
        buckets[int(dst)] = [envelopes[i] for i in indices]
    return buckets


class MigrationRouter:
    """Merges per-shard outboxes into per-shard inboxes once per depth step.

    Delivery is deterministic -- source shards are drained in index order --
    though results never depend on it: every walker carries its own RNG
    coordinates, so arrival order only affects in-memory layout.
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        #: Total walkers shipped between shards so far.
        self.migrations = 0

    def exchange(
        self, outboxes: Sequence[Mapping[int, List[WalkerEnvelope]]]
    ) -> Dict[int, List[WalkerEnvelope]]:
        """Combine every shard's outbox into per-destination inboxes.

        ``outboxes[src]`` maps destination shard to the walkers ``src``
        emits this step; the result maps each destination to its merged
        arrivals.
        """
        if len(outboxes) != self.num_shards:
            raise ValueError(
                f"expected one outbox per shard ({self.num_shards}), "
                f"got {len(outboxes)}"
            )
        inboxes: Dict[int, List[WalkerEnvelope]] = {}
        for src, outbox in enumerate(outboxes):
            for dst in sorted(outbox):
                envelopes = outbox[dst]
                if not envelopes:
                    continue
                if not (0 <= dst < self.num_shards):
                    raise ValueError(f"shard {src} routed to unknown shard {dst}")
                if dst == src:
                    raise ValueError(f"shard {src} routed walkers to itself")
                inboxes.setdefault(dst, []).extend(envelopes)
                self.migrations += len(envelopes)
        return inboxes
