"""One shard of the sampling cluster: a partition-scoped engine runtime.

A :class:`ShardRuntime` owns one contiguous vertex-range partition of the
graph and advances, depth step by depth step, exactly the walkers whose
current frontier it owns.  Per depth step it:

1. advances every resident active walker one MAIN-loop iteration on the
   batched execution engine (:class:`~repro.engine.step.BatchedStepEngine`);
2. records the step as one simulated kernel on the shard's device timeline
   (the cluster's throughput model: shards sample concurrently, the slowest
   shard sets the makespan);
3. buckets the walkers whose new frontier left the owned range by
   destination shard (vectorised) and hands them to the migration router.

**Shard-count invariance.**  Every walker computes on private streams: its
instance id, its own warp cursor (per-instance warp groups, carried in the
walker's envelope across migrations) and the stateless counter RNG.  A
step's selections and per-segment cost charges therefore depend only on the
walker's own history, never on which shard ran it or what else shared the
batch -- which is why results and cost totals are bit-identical across 1, 2
and 4 shards (``tests/integration/test_sharded_bitcompat.py``).

Two execution paths mirror the service's coalescing rule:

* ``supports_coalescing`` programs share one program object and one engine
  per shard; all residents advance as a single fused batch with
  per-instance warp groups (fast path -- this is what the throughput
  benchmark exercises);
* stateful programs (private hook RNG streams) get one program + engine per
  walker, both travelling with the walker, so hook draws are consumed in a
  placement-independent order; each replica is seeded per walker
  (:func:`walker_program_seed`) so the walkers' private streams stay
  statistically independent of each other.

Like the out-of-memory scheduler, the runtime reads the full CSR (one
shared-memory copy cluster-wide, see ``docs/distributed.md``); the
partition defines *ownership* -- which shard advances which walker -- and
the simulated per-shard device work, not a physical slice of host memory.
"""

from __future__ import annotations

import inspect
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.config import SamplingConfig
from repro.api.instance import InstanceState
from repro.compiled.step_engine import CompiledStepEngine, make_step_engine
from repro.engine.hetero import GroupedIterationSink, member_map
from repro.distributed.router import WalkerEnvelope, routing_vertex
from repro.gpusim.costmodel import CostModel
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.prng import CounterRNG, splitmix64
from repro.graph.csr import CSRGraph
from repro.graph.partition import range_owners, uniform_stride
from repro.telemetry import profiler as _profiler
from repro.telemetry import trace as _trace

__all__ = ["ShardReport", "ShardRuntime", "walker_program_seed"]


def walker_program_seed(base_seed: int, instance_id: int) -> int:
    """Hook-RNG seed of one walker's private stateful-program replica.

    Each walker owns its own program copy (see the module docstring), so the
    copies must not share a hook-RNG stream: with a common seed every
    forest-fire walker would burn the same neighbor-count sequence and every
    jump walker would teleport to the same vertex at the same step.  Mixing
    the user's program seed with the global instance id gives independent
    per-walker streams that are still a pure function of walker identity --
    placement cannot change them, preserving shard-count invariance.
    """
    mixed = splitmix64(
        np.uint64(base_seed & 0xFFFFFFFFFFFFFFFF)
    ) ^ splitmix64(np.uint64(instance_id + 1))
    return int(splitmix64(mixed))


class ShardReport:
    """Everything a shard returns at collection time."""

    def __init__(
        self,
        shard_index: int,
        envelopes: List[WalkerEnvelope],
        cost: CostModel,
        kernels: List[KernelLaunch],
        steps: int,
        admitted: int,
        emigrated: int,
        spans: Optional[list] = None,
        profile: Optional[dict] = None,
        cache_stats: Optional[dict] = None,
    ):
        self.shard_index = shard_index
        #: Every walker resident at collection (finished and active alike).
        self.envelopes = envelopes
        #: Sum of the shard's per-segment sampling charges (ints only, so
        #: cluster-level merging is order-independent).
        self.cost = cost
        #: One simulated kernel per depth step the shard actually ran.
        self.kernels = kernels
        self.steps = steps
        self.admitted = admitted
        self.emigrated = emigrated
        #: Telemetry span records drained from the shard's process, shipped
        #: home with the report (empty for in-process shards, whose spans
        #: land directly in the coordinator's buffer).
        self.spans = spans if spans is not None else []
        #: Profiler accumulators drained from the shard's process (same
        #: shipping contract as ``spans``; empty for in-process shards).
        self.profile = profile if profile is not None else {}
        #: Compiled-tier cache counters of the process that ran the shard
        #: (kernel cache + structure cache), shipped home with the report so
        #: the coordinator can aggregate per-worker cache effectiveness.
        self.cache_stats = cache_stats if cache_stats is not None else {}


class _WalkerRecord:
    """Shard-resident execution context of one walker."""

    __slots__ = ("instance", "warp_cursor", "iterations", "program", "engine")

    def __init__(self, instance, warp_cursor, iterations, program, engine):
        self.instance = instance
        self.warp_cursor = warp_cursor
        self.iterations = iterations
        self.program = program
        self.engine = engine


class ShardRuntime:
    """Executes one partition's share of a sampling run."""

    def __init__(
        self,
        shard_index: int,
        graph: CSRGraph,
        bounds: np.ndarray,
        algorithm: str,
        program_kwargs: Optional[dict],
        config: SamplingConfig,
    ):
        from repro.algorithms.registry import get_algorithm
        from repro.graph.delta import as_csr

        self.shard_index = int(shard_index)
        self.graph = as_csr(graph)
        self.bounds = np.asarray(bounds, dtype=np.int64)
        self._stride = uniform_stride(self.bounds)
        if not (0 <= self.shard_index < self.bounds.size - 1):
            raise ValueError(
                f"shard index {shard_index} outside partitioning "
                f"({self.bounds.size - 1} shards)"
            )
        self.config = config
        self.algorithm = algorithm
        self._kwargs = dict(program_kwargs or {})
        self._factory = get_algorithm(algorithm).program_factory
        probe = self._factory(**self._kwargs)
        self.coalescable = bool(probe.supports_coalescing)
        #: Stateful programs with a ``seed`` constructor argument get one
        #: derived seed per walker (see :func:`walker_program_seed`).
        self._derive_program_seed = False
        if not self.coalescable:
            try:
                parameters = inspect.signature(self._factory).parameters
                self._derive_program_seed = "seed" in parameters
            except (TypeError, ValueError):  # pragma: no cover - odd factory
                self._derive_program_seed = False
            self._base_program_seed = int(self._kwargs.get("seed", 0))
        self._rng = CounterRNG(config.seed)
        #: Shared engine for coalescable programs (one fused batch per step).
        self._engine = (
            make_step_engine(self.graph, probe, config, self._rng)
            if self.coalescable
            else None
        )
        #: The step tier this shard actually runs (profiler attribution):
        #: compiled exactly when the shared engine is the compiled
        #: specialisation.  Stateful programs get private interpreted
        #: engines, so the private path always reports interpreted.
        self.step_tier = (
            "compiled"
            if isinstance(self._engine, CompiledStepEngine)
            else "interpreted"
        )
        #: Resident walkers keyed by global instance id.
        self._records: Dict[int, _WalkerRecord] = {}
        #: Trace context adopted from the first carrying envelope, so shard
        #: spans (possibly minted in a shard process) join the request tree.
        self._trace_ctx = None
        self.cost = CostModel()
        self.kernels: List[KernelLaunch] = []
        self.steps = 0
        self.admitted = 0
        self.emigrated = 0

    # ------------------------------------------------------------------ #
    @property
    def lo(self) -> int:
        """First vertex of the owned range."""
        return int(self.bounds[self.shard_index])

    @property
    def hi(self) -> int:
        """One past the last vertex of the owned range."""
        return int(self.bounds[self.shard_index + 1])

    def active_count(self) -> int:
        """Resident walkers that still have work."""
        return sum(
            1
            for r in self._records.values()
            if not r.instance.finished and r.instance.pool_size > 0
        )

    def resident_count(self) -> int:
        """All resident walkers, finished included."""
        return len(self._records)

    # ------------------------------------------------------------------ #
    def admit(self, envelopes: List[WalkerEnvelope]) -> None:
        """Accept walkers (initial seeds or immigrants) into this shard."""
        for env in envelopes:
            if self._trace_ctx is None and env.trace_ctx is not None:
                self._trace_ctx = env.trace_ctx
            instance_id = env.instance_id
            if instance_id in self._records:
                raise ValueError(
                    f"walker {instance_id} is already resident on shard "
                    f"{self.shard_index}"
                )
            program = engine = None
            if not self.coalescable:
                # The walker's private program (mid-stream hook RNG state)
                # arrives with it; a fresh one is built only at seeding.
                if env.program is not None:
                    program = env.program
                else:
                    kwargs = dict(self._kwargs)
                    if self._derive_program_seed:
                        kwargs["seed"] = walker_program_seed(
                            self._base_program_seed, instance_id
                        )
                    program = self._factory(**kwargs)
                engine = make_step_engine(
                    self.graph, program, self.config, CounterRNG(self.config.seed)
                )
                engine.warp_counter = int(env.warp_cursor)
            self._records[instance_id] = _WalkerRecord(
                env.instance, int(env.warp_cursor), env.iterations, program, engine
            )
            self.admitted += 1

    # ------------------------------------------------------------------ #
    def step(self, depth: int) -> Dict[int, List[WalkerEnvelope]]:
        """Advance resident walkers one depth step; return the outboxes.

        The returned mapping holds, per destination shard, the walkers whose
        new frontier left the owned range (this shard excluded).
        """
        active = [
            self._records[instance_id]
            for instance_id in sorted(self._records)
            if not self._records[instance_id].instance.finished
            and self._records[instance_id].instance.pool_size > 0
        ]
        if not active:
            return {}
        step_cost = CostModel()
        # Adopt the envelope-carried context only when no ambient one exists
        # (shard processes); in-process shards nest under the epoch span.
        ctx = self._trace_ctx if _trace.current() is None else None
        # Shard processes have no ambient profiling context, so pin the
        # attribution here; on the coordinator thread this restates the
        # Executor's identical context.
        with _trace.activated(ctx), _profiler.profiled(
            "sharded", self.algorithm, self.step_tier
        ), _trace.span(
            "shard_step",
            shard=self.shard_index,
            depth=depth,
            walkers=len(active),
        ):
            if self.coalescable:
                tasks = self._step_fused(active, depth, step_cost)
            else:
                tasks = self._step_private(active, depth, step_cost)
            self.cost.merge(step_cost)
            self.steps += 1
            if tasks:
                self.kernels.append(
                    KernelLaunch(
                        name=f"kernel:shard{self.shard_index}:depth{depth}",
                        cost=step_cost.copy(),
                        num_warp_tasks=max(tasks, 1),
                    )
                )
            prof = _profiler.clock(depth)
            outboxes = self._emigrate(active)
            prof.lap("migrate")
        return outboxes

    def _step_fused(
        self, active: List[_WalkerRecord], depth: int, cost: CostModel
    ) -> int:
        """One fused engine batch with per-walker warp groups."""
        member_of, instances = member_map([[r.instance] for r in active])
        cursors = np.asarray([r.warp_cursor for r in active], dtype=np.int64)
        self._engine.set_warp_groups(member_of, len(active), initial_cursors=cursors)
        sink = GroupedIterationSink(member_of, len(active))
        tasks = self._engine.step_instances(instances, depth, cost, sink)
        cursors = self._engine.group_cursors()
        for rank, record in enumerate(active):
            record.warp_cursor = int(cursors[rank])
            record.iterations.extend(sink.lists[rank])
        return int(tasks or 0)

    def _step_private(
        self, active: List[_WalkerRecord], depth: int, cost: CostModel
    ) -> int:
        """One engine call per walker (stateful programs)."""
        tasks = 0
        for record in active:
            stepped = record.engine.step_instances(
                [record.instance], depth, cost, record.iterations
            )
            tasks += int(stepped or 0)
            record.warp_cursor = int(record.engine.warp_counter)
        return tasks

    def _emigrate(
        self, stepped: List[_WalkerRecord]
    ) -> Dict[int, List[WalkerEnvelope]]:
        """Pop the stepped walkers whose frontier left the owned range."""
        movers: List[_WalkerRecord] = []
        vertices: List[int] = []
        for record in stepped:
            inst = record.instance
            if inst.finished or inst.pool_size == 0:
                continue
            movers.append(record)
            vertices.append(routing_vertex(inst))
        if not movers:
            return {}
        owners = range_owners(
            self.bounds, np.asarray(vertices, dtype=np.int64), stride=self._stride
        )
        outboxes: Dict[int, List[WalkerEnvelope]] = {}
        for record, owner in zip(movers, owners):
            dst = int(owner)
            if dst == self.shard_index:
                continue
            del self._records[record.instance.instance_id]
            self.emigrated += 1
            outboxes.setdefault(dst, []).append(self._envelope(record))
        return outboxes

    def _envelope(self, record: _WalkerRecord) -> WalkerEnvelope:
        return WalkerEnvelope(
            instance=record.instance,
            warp_cursor=record.warp_cursor,
            iterations=record.iterations,
            program=record.program,
            # Outgoing walkers keep carrying the trace context so shards
            # populated purely by migration adopt it too.
            trace_ctx=self._trace_ctx,
        )

    # ------------------------------------------------------------------ #
    def collect(self) -> ShardReport:
        """Report every resident walker plus the shard's accounting."""
        envelopes = [
            self._envelope(self._records[instance_id])
            for instance_id in sorted(self._records)
        ]
        from repro.compiled import kernel_cache_stats, structure_cache_stats

        return ShardReport(
            shard_index=self.shard_index,
            envelopes=envelopes,
            cost=self.cost.copy(),
            kernels=list(self.kernels),
            steps=self.steps,
            admitted=self.admitted,
            emigrated=self.emigrated,
            cache_stats={
                "kernel_cache": kernel_cache_stats(),
                "structure_cache": structure_cache_stats(),
            },
        )
