"""Cluster coordinator: seed placement, depth epochs, result reassembly.

:class:`ShardedSamplingCluster` is the front door of the sharded tier.  One
``run`` proceeds in bulk-synchronous *epochs*, one per MAIN-loop depth:

1. **seed placement** -- instances are built exactly as a standalone run
   builds them (global ids ``0..N-1``) and each walker is admitted to the
   shard owning its routing vertex;
2. **epoch** -- every shard advances its resident walkers one depth step
   (in parallel under the multiprocess transport), then the
   :class:`~repro.distributed.router.MigrationRouter` exchanges the walkers
   whose frontier crossed a partition boundary;
3. **termination** -- the run ends after ``config.depth`` epochs or as soon
   as no shard holds an active walker and none is in flight;
4. **reassembly** -- walkers are collected from all shards and stitched
   back into one :class:`~repro.api.results.SampleResult` in instance-id
   order, with cost totals summed across shards (integer counters, so the
   sum is independent of how work was spread).

**Shard-count invariance contract.**  For a fixed seed, ``run`` returns
bit-identical samples, iteration counts and cost totals for *any* shard
count and either transport, because every walker computes on private
streams (see ``docs/distributed.md``).  Equivalently: each walker's sample
equals a standalone single-instance :class:`~repro.api.sampler.
GraphSampler` run constructed with the same global instance id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.api.config import SamplingConfig
from repro.api.instance import make_instances
from repro.api.results import SampleResult
from repro.distributed.transport import InProcessTransport, MultiprocessTransport
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec, V100_SPEC
from repro.graph.partition import partition_bounds, uniform_stride
from repro.service.store import SharedGraphStore

__all__ = ["ClusterResult", "ShardedSamplingCluster"]


@dataclass
class ClusterResult:
    """Outcome of one sharded sampling run."""

    #: The reassembled result; bit-identical for every shard count.
    result: SampleResult
    num_shards: int
    transport: str
    #: Depth epochs actually executed (early termination stops the loop).
    epochs: int
    #: Walkers shipped between shards over the whole run.
    migrations: int
    #: Per-shard sampling cost (per-segment charges only).
    shard_costs: List[CostModel] = field(default_factory=list)
    #: Per-shard simulated kernels (one per depth step the shard ran).
    shard_kernels: List[List] = field(default_factory=list)
    #: Walkers admitted per shard (seeds + immigrants).
    shard_admitted: List[int] = field(default_factory=list)

    @property
    def total_sampled_edges(self) -> int:
        """Total sampled edges across all walkers."""
        return self.result.total_sampled_edges

    def shard_busy_times(self, spec: DeviceSpec = V100_SPEC) -> List[float]:
        """Simulated kernel time of each shard's device."""
        return [
            float(sum(k.duration(spec) for k in kernels))
            for kernels in self.shard_kernels
        ]

    def makespan(self, spec: DeviceSpec = V100_SPEC) -> float:
        """Cluster completion time: the slowest shard's simulated busy time.

        Shards sample their partitions concurrently (that is the point of
        the tier), so the straggler sets the clock -- the same model the
        multi-GPU scaling figure uses.
        """
        return max(self.shard_busy_times(spec), default=0.0)

    def seps(self, spec: DeviceSpec = V100_SPEC) -> float:
        """Sampled edges per simulated second of cluster makespan."""
        makespan = self.makespan(spec)
        if makespan <= 0:
            return float("inf") if self.total_sampled_edges else 0.0
        return self.total_sampled_edges / makespan

    def summary(self, spec: DeviceSpec = V100_SPEC) -> Dict[str, float]:
        """Flat summary for the benchmark harness."""
        return {
            "num_shards": self.num_shards,
            "epochs": self.epochs,
            "migrations": self.migrations,
            "sampled_edges": self.total_sampled_edges,
            "makespan_s": self.makespan(spec),
            "seps": self.seps(spec),
        }


class ShardedSamplingCluster:
    """Partition-aware sharded sampler with cross-shard walker migration."""

    def __init__(
        self,
        graph,
        algorithm: str,
        config: Optional[SamplingConfig] = None,
        *,
        num_shards: int = 2,
        program_kwargs: Optional[dict] = None,
        transport: str = "in_process",
        balance: str = "vertices",
        mp_context: str = "spawn",
        store: Optional[SharedGraphStore] = None,
        graph_name: str = "cluster-graph",
    ):
        """``transport`` is ``"in_process"`` (shards in this process; the
        service route and benchmark configuration) or ``"multiprocess"``
        (one OS process per shard, graph shared via
        :mod:`repro.service.store`; pass ``store``/``graph_name`` to reuse
        an already-published graph).  ``balance`` picks the partition
        policy (see :func:`repro.graph.partition.partition_bounds`)."""
        from repro.algorithms.registry import default_config
        from repro.graph.delta import as_csr

        if transport not in ("in_process", "multiprocess"):
            raise ValueError(f"unknown transport {transport!r}")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.graph = as_csr(graph)
        self.algorithm = algorithm
        self.program_kwargs = dict(program_kwargs or {})
        self.config = (
            config if config is not None else default_config(algorithm)
        )
        self.bounds = partition_bounds(
            self.graph, min(num_shards, self.graph.num_vertices), balance=balance
        )
        self._stride = uniform_stride(self.bounds)
        self.transport = transport
        self._mp_context = mp_context
        self._store = store
        self._graph_name = graph_name

    @property
    def num_shards(self) -> int:
        """Actual shard count (bound collapsing can reduce tiny requests)."""
        return int(self.bounds.size - 1)

    # ------------------------------------------------------------------ #
    def _make_transport(self):
        if self.transport == "multiprocess":
            return MultiprocessTransport(
                self.graph,
                self.bounds,
                self.algorithm,
                self.program_kwargs,
                self.config,
                mp_context=self._mp_context,
                store=self._store,
                graph_name=self._graph_name,
            )
        return InProcessTransport(
            self.graph, self.bounds, self.algorithm, self.program_kwargs, self.config
        )

    def plan(
        self,
        seeds: Union[Sequence[int], Sequence[Sequence[int]], np.ndarray],
        *,
        num_instances: Optional[int] = None,
    ):
        """The :class:`ExecutionPlan` a :meth:`run` with these seeds executes.

        Also performs the uniform plan-time seed validation.
        """
        return self._plan(make_instances(seeds, num_instances=num_instances))

    def _plan(self, instances):
        from repro.planner.planner import PlanRequest, plan

        return plan(PlanRequest(
            graph=self.graph,
            algorithm=self.algorithm,
            config=self.config,
            instances=instances,
            boundaries=self.bounds,
            force_route="sharded",
        ))

    def run(
        self,
        seeds: Union[Sequence[int], Sequence[Sequence[int]], np.ndarray],
        *,
        num_instances: Optional[int] = None,
    ) -> ClusterResult:
        """Sample all instances across the shards and reassemble the result."""
        from repro.planner.executor import Executor

        instances = make_instances(seeds, num_instances=num_instances)
        executor = Executor(
            self._plan(instances),
            self.graph,
            transport_factory=self._make_transport,
            stride=self._stride,
            transport_name=self.transport,
        )
        return executor.execute(instances)
