"""Sharded sampling cluster: partition-aware shards with walker migration.

The distributed tier runs one :class:`~repro.distributed.shard.ShardRuntime`
per contiguous vertex-range partition (Section V-A partitioning) and moves
walkers between shards KnightKing-style whenever a step carries their
frontier across a partition boundary.  Results -- including cost totals --
are bit-identical for every shard count and transport; see
``docs/distributed.md`` for the model and the invariance contract.
"""

from repro.distributed.coordinator import ClusterResult, ShardedSamplingCluster
from repro.distributed.router import (
    MigrationRouter,
    WalkerEnvelope,
    bucket_by_shard,
    routing_vertex,
)
from repro.distributed.shard import ShardReport, ShardRuntime, walker_program_seed
from repro.distributed.transport import (
    ClusterTransportError,
    InProcessTransport,
    MultiprocessTransport,
)

__all__ = [
    "ClusterResult",
    "ClusterTransportError",
    "InProcessTransport",
    "MigrationRouter",
    "MultiprocessTransport",
    "ShardReport",
    "ShardRuntime",
    "ShardedSamplingCluster",
    "WalkerEnvelope",
    "bucket_by_shard",
    "routing_vertex",
    "walker_program_seed",
]
