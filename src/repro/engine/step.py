"""The batched MAIN-loop step: one depth iteration as a flat array program.

:class:`BatchedStepEngine` executes line 4-8 of Fig. 2(b) for *all* active
instances at once:

1. frontier selection per instance (line 4) -- only runs when an instance's
   pool exceeds ``FrontierSize``, exactly as in the scalar path;
2. one batched CSR gather of every selected frontier vertex's neighbor pool
   (line 5, :func:`repro.engine.gather.batch_gather_neighbors`);
3. one batched bias evaluation (``edge_bias_batch`` when the program provides
   it, the scalar hook looped in call order otherwise);
4. one segmented SELECT over every allocated warp task (line 6,
   :func:`repro.selection.segmented.segmented_warp_select`);
5. per-instance UPDATE / frontier-pool insertion (lines 7-8).

The engine is shared by the in-memory sampler (:meth:`step_instances`) and
the out-of-memory scheduler's batched-kernel path (:meth:`expand_entries`),
so the gather/select/update sequence exists once.

**Bit-compatibility.**  For a fixed seed the engine reproduces the scalar
loop exactly: warp ids are assigned in the same (instance, frontier-slot)
order -- including the interleaving with frontier-selection warps, which
forces a short per-instance pass whenever line 4 actually selects -- RNG
draws use the same ``(instance, depth, slot, warp, lane, attempt)`` keys, and
every cost-model counter is charged per segment as the scalar call would
charge it.  User hooks are invoked in phases (all biases, then the SELECT,
then all accept/update calls) but *within* each phase in scalar call order;
programs whose hooks share mutable state **across** different hook kinds are
the one case where the engine can diverge (see ``docs/engine.md``).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api.bias import FrontierPoolView, SamplingProgram, SegmentedEdgePool
from repro.api.config import PoolPolicy, SamplingConfig, SelectionScope
from repro.api.instance import InstanceState
from repro.api.select import warp_select
from repro.engine.gather import batch_gather_neighbors
from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.gpusim.warp import WarpExecutor
from repro.graph.csr import CSRGraph
from repro.telemetry import metrics as _metrics
from repro.telemetry import profiler as _profiler
from repro.telemetry import trace as _trace
from repro.selection.segmented import (
    concat_aranges,
    segment_positive_counts,
    segmented_warp_select,
    take_segments,
)

__all__ = ["BatchedStepEngine", "record_iterations", "validate_biases"]

_EMPTY = np.empty(0, dtype=np.int64)


def record_iterations(sink, inst, iters: np.ndarray) -> None:
    """Append per-selection iteration counts to ``sink``.

    ``sink`` is normally a plain list; a grouped sink (coalesced multi-request
    runs, :mod:`repro.engine.hetero`) exposes ``extend_for`` so each
    instance's counts land in its owning request's list.
    """
    extend_for = getattr(sink, "extend_for", None)
    if extend_for is not None:
        extend_for(inst, iters)
    else:
        # tolist() converts to python ints in one C pass; extending with a
        # genexpr of int(i) calls back into python per element.
        sink.extend(iters.tolist())


def validate_biases(biases: np.ndarray, expected: int, label: str) -> np.ndarray:
    """Validate a user bias array (shared by the sampler and the engine)."""
    biases = np.asarray(biases, dtype=np.float64).reshape(-1)
    if biases.size != expected:
        raise ValueError(
            f"{label} must return one bias per candidate "
            f"(expected {expected}, got {biases.size})"
        )
    if np.any(biases < 0) or not np.all(np.isfinite(biases)):
        raise ValueError(f"{label} must return finite, non-negative biases")
    return biases


class BatchedStepEngine:
    """Vectorised executor for one MAIN-loop depth step (Fig. 2(b))."""

    def __init__(
        self,
        graph: CSRGraph,
        program: SamplingProgram,
        config: SamplingConfig,
        rng: CounterRNG,
    ):
        self.graph = graph
        self.program = program
        self.config = config
        self.rng = rng
        #: Next warp id; advanced in the scalar path's allocation order.
        self.warp_counter = 0
        #: Optional per-group warp numbering (coalesced multi-request runs):
        #: maps ``id(instance)`` to a warp-group index.  When set, each group
        #: draws warp ids from its own cursor starting at 0 -- in the same
        #: allocation order a standalone run over just that group would use --
        #: so the RNG streams (which mix the warp id) are unchanged by what
        #: else shares the batch.
        self._warp_group_of: Optional[Mapping[int, int]] = None
        self._group_warp_cursors: Optional[np.ndarray] = None
        cls = type(program)
        self._edge_bias_overridden = cls.edge_bias is not SamplingProgram.edge_bias
        self._edge_bias_batched = (
            cls.edge_bias_batch is not SamplingProgram.edge_bias_batch
        )
        self._accept_default = cls.accept is SamplingProgram.accept
        self._update_default = cls.update is SamplingProgram.update
        self._neighbor_count_default = (
            cls.neighbor_count is SamplingProgram.neighbor_count
        )

    # ================================================================== #
    # Warp-id allocation (engine-global by default, per-group when coalescing)
    # ================================================================== #
    def set_warp_groups(
        self,
        group_of: Mapping[int, int],
        num_groups: int,
        initial_cursors: Optional[np.ndarray] = None,
    ) -> None:
        """Switch to per-group warp numbering (see ``_warp_group_of``).

        ``initial_cursors`` seeds each group's next warp id (default 0 for
        every group).  The sharded cluster uses it to resume an instance's
        private warp stream after the instance migrated to another shard:
        the cursor travels with the walker, so warp ids -- and hence the RNG
        streams that mix them -- are independent of where each step ran.
        """
        self._warp_group_of = group_of
        if initial_cursors is None:
            self._group_warp_cursors = np.zeros(num_groups, dtype=np.int64)
        else:
            cursors = np.asarray(initial_cursors, dtype=np.int64).copy()
            if cursors.shape != (num_groups,):
                raise ValueError(
                    f"initial_cursors must have shape ({num_groups},), "
                    f"got {cursors.shape}"
                )
            self._group_warp_cursors = cursors

    def group_cursors(self) -> np.ndarray:
        """Current per-group warp cursors (copy; export for migration)."""
        if self._group_warp_cursors is None:
            raise RuntimeError("warp groups are not set")
        return self._group_warp_cursors.copy()

    def _alloc_warp(self, inst: InstanceState) -> int:
        """Allocate one warp id on behalf of ``inst``."""
        if self._warp_group_of is None:
            warp_id = self.warp_counter
            self.warp_counter += 1
            return warp_id
        group = self._warp_group_of[id(inst)]
        warp_id = int(self._group_warp_cursors[group])
        self._group_warp_cursors[group] += 1
        return warp_id

    def _alloc_warp_block(
        self, instances: Sequence[InstanceState], alloc: np.ndarray
    ) -> np.ndarray:
        """Warp ids for the allocated segments of a batch (-1 elsewhere).

        Ids are sequential in segment order within each owning group (within
        the single global sequence when no groups are set), which is exactly
        the order the scalar loop would hand them out.
        """
        warp_ids = np.full(alloc.size, -1, dtype=np.int64)
        if self._warp_group_of is None:
            num_alloc = int(alloc.sum())
            warp_ids[alloc] = self.warp_counter + np.arange(num_alloc, dtype=np.int64)
            self.warp_counter += num_alloc
            return warp_ids
        groups = np.fromiter(
            (self._warp_group_of[id(inst)] for inst in instances),
            dtype=np.int64,
            count=len(instances),
        )
        for group in np.unique(groups[alloc]):
            members = alloc & (groups == group)
            count = int(members.sum())
            warp_ids[members] = self._group_warp_cursors[group] + np.arange(
                count, dtype=np.int64
            )
            self._group_warp_cursors[group] += count
        return warp_ids

    def _alloc_warp_block_for(
        self, inst: InstanceState, alloc: np.ndarray
    ) -> np.ndarray:
        """:meth:`_alloc_warp_block` when every segment belongs to ``inst``."""
        warp_ids = np.full(alloc.size, -1, dtype=np.int64)
        num_alloc = int(alloc.sum())
        if self._warp_group_of is None:
            warp_ids[alloc] = self.warp_counter + np.arange(num_alloc, dtype=np.int64)
            self.warp_counter += num_alloc
        else:
            group = self._warp_group_of[id(inst)]
            warp_ids[alloc] = self._group_warp_cursors[group] + np.arange(
                num_alloc, dtype=np.int64
            )
            self._group_warp_cursors[group] += num_alloc
        return warp_ids

    # ================================================================== #
    # In-memory sampler entry point
    # ================================================================== #
    def step_instances(
        self,
        instances: Sequence[InstanceState],
        depth: int,
        cost: CostModel,
        iteration_counts: List[int],
    ) -> Optional[int]:
        """Advance every active instance by one MAIN-loop iteration.

        Returns the step's warp-task count, or ``None`` when no instance was
        active (the caller then stops without launching a kernel, exactly as
        the scalar loop does).
        """
        active: List[InstanceState] = []
        for inst in instances:
            if inst.finished or inst.pool_size == 0:
                inst.finished = True
                continue
            active.append(inst)
        if not active:
            return None
        if self.config.scope is SelectionScope.PER_LAYER:
            tasks = self._step_per_layer(active, depth, cost, iteration_counts)
        else:
            tasks = self._step_per_vertex(active, depth, cost, iteration_counts)
        if _trace.active():
            _metrics.REGISTRY.counter("engine_depth_steps").inc()
            _metrics.REGISTRY.counter("engine_warp_tasks").inc(int(tasks or 0))
        return tasks

    # ------------------------------------------------------------------ #
    def _step_per_vertex(
        self,
        active: List[InstanceState],
        depth: int,
        cost: CostModel,
        iteration_counts: List[int],
    ) -> int:
        cfg = self.config
        tasks = 0
        prof = _profiler.clock(depth)
        # Frontier selection allocates a warp *between* the previous and next
        # instance's per-vertex warps, so when any instance actually selects
        # this step the preparation must walk instances in order; otherwise
        # the whole step's frontier is known upfront and one global batch
        # suffices.
        needs_select = cfg.frontier_size > 0 and any(
            inst.pool_size > cfg.frontier_size for inst in active
        )
        stepped: List[Tuple[InstanceState, np.ndarray, np.ndarray]] = []

        if not needs_select:
            frontier_sizes = []
            for inst in active:
                stepped.append(
                    (inst, inst.frontier_pool,
                     np.arange(inst.pool_size, dtype=np.int64))
                )
                frontier_sizes.append(inst.pool_size)
            seg_vertices = np.concatenate([f for _, f, _ in stepped])
            seg_slots = concat_aranges(np.asarray(frontier_sizes, dtype=np.int64))
            seg_rank = np.repeat(
                np.arange(len(stepped), dtype=np.int64),
                np.asarray(frontier_sizes, dtype=np.int64),
            )
            seg_instances = [stepped[r][0] for r in seg_rank]
            pool = batch_gather_neighbors(self.graph, seg_vertices, seg_instances, cost)
            prof.lap("gather")
            lengths = pool.lengths()
            biases, uniform = self._edge_biases(pool, validate_values=True)
            positive = lengths if uniform else segment_positive_counts(biases, pool.offsets)
            requested = self._neighbor_counts(pool, lengths, lengths > 0)
            alloc = (lengths > 0) & (requested > 0) & (positive > 0)
            counts = np.where(
                alloc,
                requested if cfg.with_replacement
                else np.minimum(requested, positive),
                0,
            )
            warp_ids = self._alloc_warp_block(seg_instances, alloc)
            prof.lap("bias")
        else:
            parts: List[SegmentedEdgePool] = []
            seg_rank_parts, seg_slot_parts = [], []
            bias_parts, positive_parts = [], []
            requested_parts, alloc_parts, warp_parts = [], [], []
            vertex_biases = self._frontier_biases(active)
            prof.lap("bias")
            for inst in active:
                frontier, positions, tasks_inc = self._frontier_select(
                    inst, depth, cost, biases=vertex_biases.get(id(inst))
                )
                prof.lap("select")
                tasks += tasks_inc
                if frontier.size == 0:
                    inst.finished = True
                    continue
                rank = len(stepped)
                stepped.append((inst, frontier, positions))
                part = batch_gather_neighbors(
                    self.graph, frontier, [inst] * int(frontier.size), cost
                )
                prof.lap("gather")
                lengths = part.lengths()
                biases, uniform = self._edge_biases(part, validate_values=True)
                positive = lengths if uniform else segment_positive_counts(biases, part.offsets)
                positive_parts.append(positive)
                requested = self._neighbor_counts(part, lengths, lengths > 0)
                alloc = (lengths > 0) & (requested > 0) & (positive > 0)
                warp_ids = self._alloc_warp_block_for(inst, alloc)
                parts.append(part)
                seg_rank_parts.append(np.full(alloc.size, rank, dtype=np.int64))
                seg_slot_parts.append(np.arange(alloc.size, dtype=np.int64))
                bias_parts.append(biases)
                requested_parts.append(requested)
                alloc_parts.append(alloc)
                warp_parts.append(warp_ids)
                prof.lap("bias")
            if not stepped:
                return tasks
            pool = _concat_pools(parts, self.graph)
            seg_rank = np.concatenate(seg_rank_parts)
            seg_slots = np.concatenate(seg_slot_parts)
            biases = np.concatenate(bias_parts)
            requested = np.concatenate(requested_parts)
            alloc = np.concatenate(alloc_parts)
            warp_ids = np.concatenate(warp_parts)
            positive = np.concatenate(positive_parts)
            counts = np.where(
                alloc,
                requested if cfg.with_replacement
                else np.minimum(requested, positive),
                0,
            )
            prof.lap("gather")

        allocated = np.nonzero(alloc)[0]
        tasks += int(allocated.size)
        selection = None
        if allocated.size:
            if allocated.size == alloc.size:
                sub_biases, sub_offsets = biases, pool.offsets
            else:
                sub_biases, sub_offsets = take_segments(biases, pool.offsets, allocated)
            inst_ids = np.asarray(
                [pool.instances[k].instance_id for k in allocated], dtype=np.int64
            )
            selection = segmented_warp_select(
                sub_biases,
                sub_offsets,
                counts[allocated],
                self.rng,
                [inst_ids,
                 np.full(allocated.size, depth, dtype=np.int64),
                 seg_slots[allocated] + 1,
                 warp_ids[allocated]],
                with_replacement=cfg.with_replacement,
                strategy=cfg.strategy,
                detector=cfg.detector,
                cost=cost,
                validate=False,  # validated by _edge_biases above
                positive_counts=positive[allocated],
            )
        prof.lap("select")

        # UPDATE phase: per allocated segment in scalar call order.
        inserted: List[List[np.ndarray]] = [[] for _ in stepped]
        for j, k in enumerate(allocated):
            idx, iters = selection.segment(j)
            inst = pool.instances[k]
            record_iterations(iteration_counts, inst, iters)
            sampled = pool.neighbors[pool.offsets[k] + idx]
            segment = None
            if self._accept_default:
                accepted = sampled
            else:
                segment = pool.segment(k)
                accepted = np.asarray(
                    self.program.accept(segment, sampled), dtype=np.int64
                ).reshape(-1)
            if accepted.size:
                inst.record_edges(int(pool.src[k]), accepted)
                cost.sampled_edges += int(accepted.size)
            new_vertices = self._update_vertices(pool, k, segment, accepted)
            if accepted.size and cfg.track_visited:
                inst.mark_visited(accepted)
            if new_vertices.size:
                inserted[seg_rank[k]].append(new_vertices)

        for rank, (inst, frontier, positions) in enumerate(stepped):
            self._finish_instance(inst, frontier, positions, inserted[rank], depth)
        prof.lap("update")
        return tasks

    # ------------------------------------------------------------------ #
    def _step_per_layer(
        self,
        active: List[InstanceState],
        depth: int,
        cost: CostModel,
        iteration_counts: List[int],
    ) -> int:
        cfg = self.config
        tasks = 0
        prof = _profiler.clock(depth)
        stepped: List[Tuple[InstanceState, np.ndarray, np.ndarray]] = []
        layer: List[Optional[Tuple[SegmentedEdgePool, np.ndarray, int, int]]] = []
        vertex_biases = self._frontier_biases(active)
        prof.lap("bias")
        for inst in active:
            frontier, positions, tasks_inc = self._frontier_select(
                inst, depth, cost, biases=vertex_biases.get(id(inst))
            )
            prof.lap("select")
            tasks += tasks_inc
            if frontier.size == 0:
                inst.finished = True
                continue
            stepped.append((inst, frontier, positions))
            part = batch_gather_neighbors(
                self.graph, frontier, [inst] * int(frontier.size), cost
            )
            prof.lap("gather")
            biases, uniform = self._edge_biases(part, validate_values=True)
            positive = part.size if uniform else int(np.count_nonzero(biases > 0))
            if part.size == 0 or positive == 0:
                layer.append(None)
                prof.lap("bias")
                continue
            count = (
                cfg.neighbor_size
                if cfg.with_replacement
                else min(cfg.neighbor_size, positive)
            )
            warp_id = self._alloc_warp(inst)
            tasks += 1
            layer.append((part, biases, count, warp_id))
            prof.lap("bias")

        segments = [(rank, info) for rank, info in enumerate(layer) if info is not None]
        if segments:
            flat_biases = np.concatenate([info[1] for _, info in segments])
            seg_sizes = np.asarray([info[0].size for _, info in segments], dtype=np.int64)
            offsets = np.zeros(seg_sizes.size + 1, dtype=np.int64)
            np.cumsum(seg_sizes, out=offsets[1:])
            counts = np.asarray([info[2] for _, info in segments], dtype=np.int64)
            inst_ids = np.asarray(
                [stepped[rank][0].instance_id for rank, _ in segments], dtype=np.int64
            )
            warp_ids = np.asarray([info[3] for _, info in segments], dtype=np.int64)
            selection = segmented_warp_select(
                flat_biases,
                offsets,
                counts,
                self.rng,
                [inst_ids,
                 np.full(counts.size, depth, dtype=np.int64),
                 np.ones(counts.size, dtype=np.int64),
                 warp_ids],
                with_replacement=cfg.with_replacement,
                strategy=cfg.strategy,
                detector=cfg.detector,
                cost=cost,
                validate=False,  # validated by _edge_biases above
            )
        prof.lap("select")
        inserted: List[List[np.ndarray]] = [[] for _ in stepped]
        for j, (rank, (part, _, _, _)) in enumerate(segments or []):
            idx, iters = selection.segment(j)
            inst = stepped[rank][0]
            record_iterations(iteration_counts, inst, iters)
            all_src = np.repeat(part.src, part.lengths())
            chosen_src = all_src[idx]
            chosen_dst = part.neighbors[idx]
            inst.record_edges(chosen_src, chosen_dst)
            cost.sampled_edges += int(chosen_dst.size)
            # UPDATE per source vertex with the subset it contributed, in
            # gather order; empty pools never reach the hook.
            lengths = part.lengths()
            for k in range(part.num_segments):
                if lengths[k] == 0:
                    continue
                mask = chosen_src == part.src[k]
                if not mask.any():
                    continue
                new_vertices = self._update_vertices(
                    part, k, None, chosen_dst[mask]
                )
                if new_vertices.size:
                    inserted[rank].append(new_vertices)
            if cfg.track_visited:
                inst.mark_visited(chosen_dst)

        for rank, (inst, frontier, positions) in enumerate(stepped):
            self._finish_instance(inst, frontier, positions, inserted[rank], depth)
        prof.lap("update")
        return tasks

    # ================================================================== #
    # Out-of-memory scheduler entry point
    # ================================================================== #
    def expand_entries(
        self,
        vertices: np.ndarray,
        instance_ids: np.ndarray,
        depths: np.ndarray,
        instance_map: Dict[int, InstanceState],
        cost: CostModel,
        iteration_counts: List[int],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand one batched group of frontier-queue entries (Section V-C).

        Returns ``(vertices, instance_ids, depths)`` of the successor entries
        in the exact order the scalar per-entry loop would have enqueued
        them; the caller routes them to the owning partitions' queues.
        """
        cfg = self.config
        vertices = np.asarray(vertices, dtype=np.int64)
        instance_ids = np.asarray(instance_ids, dtype=np.int64)
        depths = np.asarray(depths, dtype=np.int64)
        live = depths < cfg.depth
        vertices, instance_ids, depths = (
            vertices[live], instance_ids[live], depths[live]
        )
        if vertices.size == 0:
            return _EMPTY, _EMPTY, _EMPTY
        # Entries in one batched group can sit at different depths, so the
        # profile attributes the whole expansion to the undepthed bucket.
        prof = _profiler.clock(-1)
        seg_instances = [instance_map[int(i)] for i in instance_ids]
        pool = batch_gather_neighbors(self.graph, vertices, seg_instances, cost)
        prof.lap("gather")
        lengths = pool.lengths()
        biases, uniform = self._edge_biases(pool, validate_values=False)
        positive = lengths if uniform else segment_positive_counts(biases, pool.offsets)
        # The OOM kernel consults NeighborSize only after the positive-bias
        # check, so the hook is skipped for all-zero pools.
        requested = self._neighbor_counts(pool, lengths, (lengths > 0) & (positive > 0))
        alloc = (lengths > 0) & (positive > 0) & (requested > 0)
        counts = np.where(
            alloc,
            requested if cfg.with_replacement else np.minimum(requested, positive),
            0,
        )
        prof.lap("bias")
        allocated = np.nonzero(alloc)[0]
        selection = None
        if allocated.size:
            warp_ids = self._alloc_warp_block(seg_instances, alloc)[allocated]
            if allocated.size == alloc.size:
                sub_biases, sub_offsets = biases, pool.offsets
            else:
                sub_biases, sub_offsets = take_segments(biases, pool.offsets, allocated)
            selection = segmented_warp_select(
                sub_biases,
                sub_offsets,
                counts[allocated],
                self.rng,
                [instance_ids[allocated], depths[allocated],
                 vertices[allocated], warp_ids],
                with_replacement=cfg.with_replacement,
                strategy=cfg.strategy,
                detector=cfg.detector,
                cost=cost,
                # OOM edge biases are only size-checked (like the scalar OOM
                # kernel); non-uniform values still get the CTPS validation.
                validate=not uniform,
                positive_counts=positive[allocated],
            )
        prof.lap("select")

        succ_v: List[np.ndarray] = []
        succ_i: List[int] = []
        succ_d: List[int] = []
        for j, k in enumerate(allocated):
            idx, iters = selection.segment(j)
            inst = pool.instances[k]
            record_iterations(iteration_counts, inst, iters)
            sampled = pool.neighbors[pool.offsets[k] + idx]
            segment = None
            if self._accept_default:
                accepted = sampled
            else:
                segment = pool.segment(k)
                accepted = np.asarray(
                    self.program.accept(segment, sampled), dtype=np.int64
                ).reshape(-1)
            if accepted.size:
                inst.record_edges(int(pool.src[k]), accepted)
                cost.sampled_edges += int(accepted.size)
            new_vertices = self._update_vertices(pool, k, segment, accepted)
            if accepted.size and cfg.track_visited:
                inst.mark_visited(accepted)
            inst.prev_vertex = int(pool.src[k])
            next_depth = int(depths[k]) + 1
            if next_depth >= cfg.depth or new_vertices.size == 0:
                continue
            succ_v.append(new_vertices)
            succ_i.append(int(instance_ids[k]))
            succ_d.append(next_depth)
        prof.lap("update")
        if not succ_v:
            return _EMPTY, _EMPTY, _EMPTY
        sizes = np.asarray([v.size for v in succ_v], dtype=np.int64)
        return (
            np.concatenate(succ_v),
            np.repeat(np.asarray(succ_i, dtype=np.int64), sizes),
            np.repeat(np.asarray(succ_d, dtype=np.int64), sizes),
        )

    # ================================================================== #
    # Shared helpers
    # ================================================================== #
    def _frontier_biases(
        self, active: List[InstanceState]
    ) -> Dict[int, np.ndarray]:
        """VERTEXBIAS for every instance that will select this step, batched.

        Bias values do not depend on warp ids, so they can be evaluated in
        one ``vertex_bias_batch`` call before the (warp-id ordered)
        per-instance selection walk.
        """
        cfg = self.config
        if cfg.frontier_size == 0:
            return {}
        selecting = [i for i in active if i.pool_size > cfg.frontier_size]
        if not selecting:
            return {}
        views = [
            FrontierPoolView(
                vertices=inst.frontier_pool,
                degrees=self.graph.degrees[inst.frontier_pool],
                instance=inst,
                graph=self.graph,
            )
            for inst in selecting
        ]
        batch = self.program.vertex_bias_batch(views)
        if len(batch) != len(selecting):
            raise ValueError(
                f"vertex_bias_batch must return one bias array per pool "
                f"(expected {len(selecting)}, got {len(batch)})"
            )
        return {
            id(inst): validate_biases(b, inst.pool_size, "vertex_bias")
            for inst, b in zip(selecting, batch)
        }

    def _frontier_select(
        self,
        inst: InstanceState,
        depth: int,
        cost: CostModel,
        biases: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Line 4: SELECT(VERTEXBIAS(FrontierPool), FrontierSize)."""
        cfg = self.config
        pool = inst.frontier_pool
        if cfg.frontier_size == 0 or pool.size <= cfg.frontier_size:
            return pool, np.arange(pool.size, dtype=np.int64), 0
        if biases is None:
            view = FrontierPoolView(
                vertices=pool,
                degrees=self.graph.degrees[pool],
                instance=inst,
                graph=self.graph,
            )
            biases = validate_biases(
                self.program.vertex_bias(view), pool.size, "vertex_bias"
            )
        positive = int(np.count_nonzero(biases > 0))
        count = min(cfg.frontier_size, positive)
        if count == 0:
            return _EMPTY, _EMPTY, 0
        warp = WarpExecutor(warp_id=self._alloc_warp(inst), cost=cost, rng=self.rng)
        result = warp_select(
            biases,
            count,
            warp,
            inst.instance_id,
            depth,
            0,
            with_replacement=False,
            strategy=cfg.strategy,
            detector=cfg.detector,
        )
        return pool[result.indices], result.indices, 1

    def _edge_biases(
        self, pool: SegmentedEdgePool, *, validate_values: bool
    ) -> Tuple[np.ndarray, bool]:
        """EDGEBIAS for a whole batch, preserving scalar hook-call order.

        Returns ``(biases, uniform)``; ``uniform`` marks the all-ones default
        fast path so callers can skip positive-bias counting and revalidation.
        """
        total = pool.size
        if self._edge_bias_batched:
            biases = np.asarray(
                self.program.edge_bias_batch(pool), dtype=np.float64
            ).reshape(-1)
            if biases.size != total:
                raise ValueError(
                    f"edge_bias_batch must return one bias per candidate "
                    f"(expected {total}, got {biases.size})"
                )
            if validate_values and (np.any(biases < 0) or not np.all(np.isfinite(biases))):
                raise ValueError("edge_bias must return finite, non-negative biases")
            return biases, False
        if not self._edge_bias_overridden:
            return np.ones(total, dtype=np.float64), True
        out = np.empty(total, dtype=np.float64)
        lengths = pool.lengths()
        for k in np.nonzero(lengths > 0)[0]:
            part = np.asarray(
                self.program.edge_bias(pool.segment(int(k))), dtype=np.float64
            ).reshape(-1)
            if part.size != int(lengths[k]):
                raise ValueError(
                    f"edge_bias must return one bias per candidate "
                    f"(expected {int(lengths[k])}, got {part.size})"
                )
            if validate_values and (np.any(part < 0) or not np.all(np.isfinite(part))):
                raise ValueError("edge_bias must return finite, non-negative biases")
            out[pool.offsets[k] : pool.offsets[k + 1]] = part
        return out, False

    def _update_vertices(
        self,
        pool: SegmentedEdgePool,
        k: int,
        segment,
        accepted: np.ndarray,
    ) -> np.ndarray:
        """UPDATE for one segment (lines 7-8's filter).

        ``segment`` is a pre-materialised scalar view when the accept hook
        already built one, else ``None``.  The compiled step engine overrides
        this with the program's *declared* update shape, skipping hook
        dispatch and segment materialisation.
        """
        if self._update_default:
            return accepted
        segment = segment if segment is not None else pool.segment(k)
        return np.asarray(
            self.program.update(segment, accepted), dtype=np.int64
        ).reshape(-1)

    def _neighbor_counts(
        self, pool: SegmentedEdgePool, lengths: np.ndarray, hook_mask: np.ndarray
    ) -> np.ndarray:
        """Requested NeighborSize per segment (hook looped in call order)."""
        requested = np.full(pool.num_segments, self.config.neighbor_size, dtype=np.int64)
        if not self._neighbor_count_default:
            for k in np.nonzero(hook_mask)[0]:
                requested[k] = int(
                    self.program.neighbor_count(
                        pool.segment(int(k)), self.config.neighbor_size
                    )
                )
        return requested

    def _finish_instance(
        self,
        inst: InstanceState,
        frontier: np.ndarray,
        positions: np.ndarray,
        inserted: List[np.ndarray],
        depth: int,
    ) -> None:
        """Lines 7-8 wrap-up: pool insertion, depth advance, walk bookkeeping."""
        # The previous vertex is only meaningful for walk-style single-vertex
        # frontiers (see InstanceState.prev_vertex's contract).
        if frontier.size == 1:
            inst.prev_vertex = int(frontier[0])
        pool = inst.frontier_pool
        new_vertices = (
            np.concatenate(inserted) if inserted else _EMPTY
        )
        if self.config.pool_policy is PoolPolicy.REPLACE_SELECTED:
            keep = np.ones(pool.size, dtype=bool)
            keep[np.asarray(positions, dtype=np.int64)] = False
            inst.set_pool(np.concatenate([pool[keep], new_vertices]))
        else:  # NEXT_LAYER
            inst.set_pool(new_vertices)
        inst.depth = depth + 1
        if inst.pool_size == 0:
            inst.finished = True


def _concat_pools(
    parts: List[SegmentedEdgePool], graph: CSRGraph
) -> SegmentedEdgePool:
    """Concatenate per-instance gathers into one step-wide pool."""
    if not parts:
        return SegmentedEdgePool(
            src=_EMPTY,
            offsets=np.zeros(1, dtype=np.int64),
            neighbors=_EMPTY,
            weights=np.empty(0, dtype=np.float64),
            instances=[],
            graph=graph,
        )
    sizes = np.asarray([p.num_segments for p in parts], dtype=np.int64)
    offsets = np.zeros(int(sizes.sum()) + 1, dtype=np.int64)
    pos = 0
    shift = 0
    for p in parts:
        offsets[pos + 1 : pos + p.num_segments + 1] = p.offsets[1:] + shift
        pos += p.num_segments
        shift += p.offsets[-1]
    instances: List[InstanceState] = []
    for p in parts:
        instances.extend(p.instances)
    weights = (
        None
        if graph.weights is None
        else np.concatenate([p.weights for p in parts])
    )
    return SegmentedEdgePool(
        src=np.concatenate([p.src for p in parts]),
        offsets=offsets,
        neighbors=np.concatenate([p.neighbors for p in parts]),
        weights=weights,
        instances=instances,
        graph=graph,
    )
