"""Batched execution engine for the C-SAW MAIN loop.

The engine executes one Fig. 2(b) depth step for *all* active instances as a
flat NumPy array program -- one batched CSR gather, one batched bias
evaluation, one segmented SELECT -- instead of nesting Python loops over
instances and frontier vertices.  Both the in-memory
:class:`~repro.api.sampler.GraphSampler` and the out-of-memory
:class:`~repro.oom.scheduler.OutOfMemorySampler` delegate their per-depth
step to it, so the gather/select/update sequence lives in exactly one place.

The engine is bit-compatible with the scalar path: for a fixed seed it
produces the same sampled edges, the same per-selection iteration counts and
the same cost-model totals (see ``tests/integration/test_engine_equivalence``
and ``docs/engine.md`` for the contract with stateful user hooks).
"""

from repro.engine.gather import batch_gather_neighbors
from repro.engine.hetero import (
    GroupedIterationSink,
    InstanceGroup,
    run_coalesced,
    run_heterogeneous,
)
from repro.engine.step import BatchedStepEngine, record_iterations, validate_biases

__all__ = [
    "BatchedStepEngine",
    "GroupedIterationSink",
    "InstanceGroup",
    "batch_gather_neighbors",
    "record_iterations",
    "run_coalesced",
    "run_heterogeneous",
    "validate_biases",
]
