"""Heterogeneous batches: many independent sampling runs in one engine drive.

The sampling service coalesces concurrently arriving requests into as few
engine invocations as possible.  A *member* is one request's worth of
instances (numbered ``0..n-1`` exactly as :func:`~repro.api.instance.
make_instances` numbers a standalone run); a *group* pairs a member list with
the program and config it runs under.

:func:`run_coalesced` executes several members that share one
``(program, config)`` in a single :class:`~repro.engine.step.
BatchedStepEngine` batch.  Per-member results are **bit-identical** to
standalone :class:`~repro.api.sampler.GraphSampler` runs because every
coordinate the counter RNG mixes is preserved:

* instance ids restart at 0 per member (the members' instances may therefore
  share ids -- the engine never keys state by instance id, only the RNG
  coordinates do, and those must collide exactly as they would standalone);
* warp ids are drawn from a per-member cursor starting at 0, in the same
  allocation order a standalone run over just that member would use
  (:meth:`BatchedStepEngine.set_warp_groups`);
* the counter RNG is stateless, so members sharing one seed share one stream
  by construction;
* selection, bias and cost arithmetic are per-segment (the engine-equivalence
  guarantee), so a segment's outcome does not depend on what else is in the
  batch.

The one thing that must *not* be shared is program-private mutable state:
hooks that consume their own RNG stream in call order (forest fire's
geometric draws, Metropolis-Hastings acceptance, jump/restart teleports)
would interleave across members.  Such programs set
``supports_coalescing = False`` and :func:`run_heterogeneous` runs them as
singleton groups, which is trivially standalone-identical.

Cost attribution: a coalesced batch is one sequence of fused kernels, so the
per-member results carry the *batch's* aggregate cost and kernel records
(tagged with ``coalesced_members`` metadata); sampled edges, seeds and
iteration counts are per member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.bias import SamplingProgram
from repro.api.config import SamplingConfig
from repro.api.instance import InstanceState
from repro.api.results import SampleResult
from repro.gpusim.prng import CounterRNG

__all__ = [
    "InstanceGroup",
    "GroupedIterationSink",
    "member_map",
    "run_coalesced",
    "run_heterogeneous",
]


def member_map(
    members: Sequence[Sequence[InstanceState]],
) -> Tuple[Dict[int, int], List[InstanceState]]:
    """Identity map ``id(instance) -> member rank`` plus the flat instance list.

    Shared by :func:`run_coalesced` and the sharded cluster's per-walker warp
    grouping (:mod:`repro.distributed.shard`), which both key the engine's
    warp-group cursors by instance identity.
    """
    member_of: Dict[int, int] = {}
    flat: List[InstanceState] = []
    for rank, insts in enumerate(members):
        for inst in insts:
            member_of[id(inst)] = rank
            flat.append(inst)
    return member_of, flat


@dataclass
class InstanceGroup:
    """One independent sampling run inside a heterogeneous batch."""

    program: SamplingProgram
    config: SamplingConfig
    instances: List[InstanceState]


class GroupedIterationSink:
    """Routes the engine's per-selection iteration counts to their member.

    The engine calls :func:`repro.engine.step.record_iterations`, which
    dispatches to :meth:`extend_for` when the sink provides it; the owning
    member is resolved through the instance identity map built by
    :func:`run_coalesced`.
    """

    def __init__(self, member_of: Dict[int, int], num_members: int):
        self._member_of = member_of
        self.lists: List[List[int]] = [[] for _ in range(num_members)]

    def extend_for(self, inst: InstanceState, iters: np.ndarray) -> None:
        # tolist() yields python ints in one C pass (see record_iterations).
        self.lists[self._member_of[id(inst)]].extend(iters.tolist())


def run_coalesced(
    graph,
    program: SamplingProgram,
    config: SamplingConfig,
    members: Sequence[Sequence[InstanceState]],
    *,
    use_compiled: Optional[bool] = None,
    algorithm: Optional[str] = None,
) -> List[SampleResult]:
    """Run several members of one ``(program, config)`` as a single batch.

    Returns one :class:`SampleResult` per member, whose samples, seeds and
    iteration counts are bit-identical to a standalone ``GraphSampler`` run
    of that member alone (cost/kernel records are the shared batch's).
    """
    from repro.graph.delta import as_csr
    from repro.planner.executor import Executor
    from repro.planner.planner import PlanRequest, plan

    graph = as_csr(graph)  # DeltaGraphs sample their canonical snapshot
    members = [list(m) for m in members]
    execution_plan = plan(PlanRequest(
        graph=graph,
        program=program,
        config=config,
        algorithm=algorithm,
        members=members,
        force_route="coalesced",
        allow_compiled=use_compiled,
    ))
    from repro.compiled.step_engine import make_step_engine

    rng = CounterRNG(config.seed)
    engine = make_step_engine(graph, program, config, rng, use_compiled=use_compiled)
    compiled_kernel = None
    if execution_plan.step_tier == "compiled":
        from repro.compiled import get_kernel_spec, instantiate_kernel

        spec = get_kernel_spec(program, config, execution_plan)
        compiled_kernel = instantiate_kernel(spec, engine)
    executor = Executor(
        execution_plan,
        graph,
        program=program,
        engine=engine,
        compiled_kernel=compiled_kernel,
    )
    return executor.execute(members=members)


def run_heterogeneous(
    graph, groups: Sequence[InstanceGroup]
) -> List[SampleResult]:
    """Run a heterogeneous batch of instance groups with per-group configs.

    Groups that share the *same program object* and an equal config -- and
    whose program declares ``supports_coalescing`` -- are merged into one
    :func:`run_coalesced` batch; every other group runs as a singleton batch.
    Results come back in input order.
    """
    merged: Dict[Tuple[int, SamplingConfig], List[int]] = {}
    order: List[Tuple[int, SamplingConfig]] = []
    for index, group in enumerate(groups):
        if group.program.supports_coalescing:
            key = (id(group.program), group.config)
        else:
            key = (index, group.config)  # singleton: never shared
        if key not in merged:
            merged[key] = []
            order.append(key)
        merged[key].append(index)

    results: List[Optional[SampleResult]] = [None] * len(groups)
    for key in order:
        indices = merged[key]
        head = groups[indices[0]]
        batch = run_coalesced(
            graph,
            head.program,
            head.config,
            [groups[i].instances for i in indices],
        )
        for i, result in zip(indices, batch):
            results[i] = result
    return results  # type: ignore[return-value]
