"""Batched GATHERNEIGHBORS: one CSR row gather for a whole depth step.

The scalar :func:`repro.api.select.gather_neighbors` fetches one frontier
vertex's adjacency slice per call.  The engine instead computes every
segment's slice coordinates from ``CSRGraph.row_ptr`` directly and pulls all
rows out of ``col_idx`` with a single fancy-index, charging the same
global-memory traffic the scalar calls would charge (two 8-byte streams per
edge plus a 16-byte row descriptor per vertex) in one aggregate update.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.api.bias import SegmentedEdgePool
from repro.api.instance import InstanceState
from repro.gpusim.costmodel import CostModel
from repro.graph.csr import CSRGraph

__all__ = ["batch_gather_neighbors"]


def batch_gather_neighbors(
    graph: CSRGraph,
    vertices: np.ndarray,
    instances: Sequence[InstanceState],
    cost: Optional[CostModel] = None,
) -> SegmentedEdgePool:
    """Gather the neighbor pools of ``vertices`` into one flat batch.

    ``instances[k]`` is the owning instance of ``vertices[k]``; the returned
    :class:`~repro.api.bias.SegmentedEdgePool` has one segment per vertex
    (zero-length segments for isolated vertices, which still pay the 16-byte
    row-descriptor read, exactly like the scalar gather).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    num_segments = vertices.size
    starts = graph.row_ptr[vertices]
    lengths = graph.degrees[vertices]
    offsets = np.zeros(num_segments + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    # Flat position j of segment k maps to col_idx[starts[k] + local_j].
    flat = np.repeat(starts - offsets[:-1], lengths) + np.arange(total, dtype=np.int64)
    neighbors = graph.col_idx[flat]
    # Unweighted graphs defer the ones array until a consumer asks for it.
    weights = graph.weights[flat] if graph.weights is not None else None
    if cost is not None:
        cost.charge_global_bytes(16 * total + 16 * num_segments)
    return SegmentedEdgePool(
        src=vertices,
        offsets=offsets,
        neighbors=neighbors,
        weights=weights,
        instances=instances,
        graph=graph,
    )
