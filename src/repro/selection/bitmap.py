"""Collision detection: bitmaps and the linear-search baseline.

Sampling *without* replacement needs to know whether a freshly selected
candidate was already picked by another lane.  The paper compares three
mechanisms:

* **Linear search baseline** -- sampled vertices live in GPU shared memory and
  each new selection linearly scans them (the "baseline" in Fig. 12).  Cheap
  per probe but the probe count grows with the number of prior selections.
* **Contiguous bitmap** -- one bit per candidate packed into 8-bit words in
  candidate order.  A single atomic compare-and-swap per check, but adjacent
  candidates share a word so warp lanes conflict and serialise (Fig. 7(a)).
* **Strided bitmap** -- the same bits scattered across words with a stride
  inspired by set-associative caches (Fig. 7(b)), which spreads concurrent
  lanes over different words and removes most conflicts.

All detectors implement the same small interface so the collision strategies
in :mod:`repro.selection.collision` can be composed with any of them.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

import numpy as np

from repro.gpusim.atomics import atomic_cas_bitmap
from repro.gpusim.costmodel import CostModel

__all__ = [
    "CollisionDetector",
    "LinearSearchDetector",
    "ContiguousBitmap",
    "StridedBitmap",
    "make_detector",
]

_BITS_PER_WORD = 8


class CollisionDetector(Protocol):
    """Interface shared by every collision-detection mechanism."""

    def check_and_mark(self, candidate: int, cost: Optional[CostModel] = None) -> bool:
        """Mark ``candidate`` selected; return True when it already was."""
        ...

    def is_marked(self, candidate: int) -> bool:
        """Whether ``candidate`` is currently marked selected."""
        ...

    def reset(self) -> None:
        """Clear all marks so the detector can be reused for the next pool."""
        ...


class LinearSearchDetector:
    """Shared-memory linear search over previously sampled candidates."""

    def __init__(self, num_candidates: int):
        if num_candidates < 1:
            raise ValueError("detector needs at least one candidate")
        self.num_candidates = num_candidates
        self._selected: List[int] = []

    def check_and_mark(self, candidate: int, cost: Optional[CostModel] = None) -> bool:
        """Scan the selected list; append the candidate when absent.

        Appending still requires an atomic increment of the shared list's
        tail pointer so concurrent lanes do not overwrite each other's slot;
        only the membership test itself is a plain linear scan.
        """
        self._check(candidate)
        probes = len(self._selected) if self._selected else 1
        found = candidate in self._selected
        if cost is not None:
            cost.collision_probes += probes
            cost.shared_accesses += probes
        if not found:
            self._selected.append(candidate)
            if cost is not None:
                cost.charge_atomics(1, 0)
        return found

    def is_marked(self, candidate: int) -> bool:
        self._check(candidate)
        return candidate in self._selected

    def reset(self) -> None:
        self._selected.clear()

    @property
    def selected(self) -> List[int]:
        """Candidates marked so far, in selection order."""
        return list(self._selected)

    def _check(self, candidate: int) -> None:
        if not (0 <= candidate < self.num_candidates):
            raise IndexError(f"candidate {candidate} out of range")


class _BitmapBase:
    """Shared machinery of the two bitmap layouts."""

    def __init__(self, num_candidates: int):
        if num_candidates < 1:
            raise ValueError("detector needs at least one candidate")
        self.num_candidates = num_candidates
        self.num_words = (self._slot(num_candidates - 1) // _BITS_PER_WORD) + 1
        self.words = np.zeros(self.num_words, dtype=np.uint8)

    def _slot(self, candidate: int) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def _locate(self, candidate: int) -> tuple[int, int]:
        slot = self._slot(candidate)
        return slot // _BITS_PER_WORD, slot % _BITS_PER_WORD

    def check_and_mark(self, candidate: int, cost: Optional[CostModel] = None) -> bool:
        """Atomic test-and-set of the candidate's bit."""
        if not (0 <= candidate < self.num_candidates):
            raise IndexError(f"candidate {candidate} out of range")
        word, bit = self._locate(candidate)
        was_set, _ = atomic_cas_bitmap(
            self.words, np.array([word]), np.array([bit]), cost
        )
        return bool(was_set[0])

    def check_and_mark_many(
        self, candidates: np.ndarray, cost: Optional[CostModel] = None
    ) -> np.ndarray:
        """Warp-step variant: all lanes test-and-set together.

        Lanes hitting the same *word* in the same step conflict and are
        charged the serialisation penalty; this is where contiguous and
        strided layouts differ.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size and (candidates.min() < 0 or candidates.max() >= self.num_candidates):
            raise IndexError("candidate out of range")
        slots = np.array([self._slot(int(c)) for c in candidates], dtype=np.int64)
        words = slots // _BITS_PER_WORD
        bits = slots % _BITS_PER_WORD
        was_set, _ = atomic_cas_bitmap(self.words, words, bits, cost)
        return was_set

    def is_marked(self, candidate: int) -> bool:
        if not (0 <= candidate < self.num_candidates):
            raise IndexError(f"candidate {candidate} out of range")
        word, bit = self._locate(candidate)
        return bool(self.words[word] & np.uint8(1 << bit))

    def reset(self) -> None:
        self.words[:] = 0


class ContiguousBitmap(_BitmapBase):
    """Bitmap with candidate ``i`` stored at bit position ``i`` (Fig. 7(a))."""

    def _slot(self, candidate: int) -> int:
        return candidate


class StridedBitmap(_BitmapBase):
    """Bitmap whose bits are strided across words (Fig. 7(b)).

    With stride ``s`` (the number of 8-bit words used), candidate ``i`` is
    mapped to word ``i mod s`` and bit ``i // s``, so candidates that are
    adjacent in the pool -- exactly the ones concurrent lanes tend to touch --
    land in different 8-bit words and no longer serialise.  The default stride
    is large enough that a full warp of concurrent lanes maps to distinct
    words whenever the pool allows it (at the cost of at most 32 words of
    extra bitmap storage).
    """

    def __init__(self, num_candidates: int, stride: Optional[int] = None):
        self.num_candidates = int(num_candidates)
        if self.num_candidates < 1:
            raise ValueError("detector needs at least one candidate")
        min_words = (self.num_candidates + _BITS_PER_WORD - 1) // _BITS_PER_WORD
        if stride is None:
            stride = max(min_words, min(self.num_candidates, 32))
        self.stride = int(stride)
        if self.stride < min_words:
            raise ValueError(
                f"stride {self.stride} too small: need at least {min_words} words "
                f"for {self.num_candidates} candidates"
            )
        self.num_words = self.stride
        self.words = np.zeros(self.num_words, dtype=np.uint8)

    def _slot(self, candidate: int) -> int:
        word = candidate % self.stride
        bit = candidate // self.stride
        return word * _BITS_PER_WORD + bit

    @property
    def capacity(self) -> int:
        """Maximum candidate count this strided layout can hold."""
        return self.stride * _BITS_PER_WORD


def make_detector(kind: str, num_candidates: int) -> CollisionDetector:
    """Factory for detectors: ``"linear"``, ``"bitmap"`` or ``"strided_bitmap"``."""
    kind = kind.lower()
    if kind in ("linear", "linear_search", "baseline"):
        return LinearSearchDetector(num_candidates)
    if kind in ("bitmap", "contiguous", "contiguous_bitmap"):
        return ContiguousBitmap(num_candidates)
    if kind in ("strided", "strided_bitmap"):
        return StridedBitmap(num_candidates)
    raise ValueError(f"unknown collision detector kind {kind!r}")
