"""Incremental rebuilds of per-vertex sampling structures.

ITS prefix sums (:class:`~repro.selection.ctps.CTPS`) and alias tables are
built *per candidate pool* -- for graph sampling, per vertex.  A static graph
pays the build once; a dynamic graph would pay it again on every compaction
even though a small update rate leaves almost every adjacency list untouched.

The caches here hold one pre-built structure per vertex and expose two
paths:

* :meth:`~VertexStructureCache.build` -- the full O(V) construction a static
  engine performs up front;
* :meth:`~VertexStructureCache.update` -- the incremental path: given the
  fresh CSR and the set of *touched* vertices a
  :class:`~repro.graph.delta.DeltaGraph` compaction reports, only those
  vertices' structures are rebuilt; everything else is reused as is.

Bit-compatibility: an updated cache is indistinguishable from a freshly
built one -- ``ctps(v)`` / ``table(v)`` return structures with byte-equal
arrays, because a vertex's structure depends only on its own weight slice
and untouched slices are unchanged by canonical compaction.
``benchmarks/bench_dynamic_updates.py`` measures the speedup (>= 3x at a 1%
update rate is asserted); :func:`bind` wires one or more caches to a
``DeltaGraph`` so every compaction patches them automatically.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.costmodel import CostModel
from repro.selection.alias import AliasTable, build_alias_table
from repro.selection.ctps import CTPS

__all__ = ["VertexITSCache", "VertexAliasCache", "bind"]


class VertexStructureCache:
    """Shared machinery: one sampling structure per positive-weight vertex.

    Vertices with no neighbors (or all-zero weights) carry no structure --
    :meth:`has` is False and the accessor raises ``KeyError``, mirroring the
    ``ValueError`` a direct construction over their empty/zero pool raises.
    """

    def __init__(self, graph: CSRGraph):
        self._graph = graph
        self._entries: Dict[int, object] = {}
        #: Structures (re)built over the cache's lifetime, for cost audits.
        self.built_total = 0
        #: Size of the most recent :meth:`update`'s touched set.
        self.last_update_size = 0

    # -- subclass hook -------------------------------------------------- #
    def _build_one(self, weights: np.ndarray, cost: Optional[CostModel]):
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, graph: CSRGraph, cost: Optional[CostModel] = None):
        """Full build: construct the structure of every vertex (O(V) work)."""
        cache = cls(graph)
        cache._rebuild(np.arange(graph.num_vertices), cost)
        return cache

    def update(
        self,
        graph: CSRGraph,
        touched: np.ndarray,
        cost: Optional[CostModel] = None,
    ) -> int:
        """Incremental rebuild: patch only ``touched`` vertices' structures.

        ``graph`` is the post-compaction CSR; untouched vertices must have
        the same weight slice they had at the previous build (which is what
        :meth:`DeltaGraph.compact`'s touched set guarantees).  Returns the
        number of structures rebuilt.
        """
        touched = np.asarray(touched, dtype=np.int64).reshape(-1)
        if touched.size and (
            touched.min() < 0 or touched.max() >= graph.num_vertices
        ):
            raise IndexError("touched vertices outside the new graph")
        self._graph = graph
        self.last_update_size = int(touched.size)
        return self._rebuild(touched, cost)

    def _rebuild(self, vertices: np.ndarray, cost: Optional[CostModel]) -> int:
        built = 0
        for vertex in vertices:
            vertex = int(vertex)
            weights = self._graph.neighbor_weights(vertex)
            if weights.size == 0 or not np.any(weights > 0):
                self._entries.pop(vertex, None)
                continue
            self._entries[vertex] = self._build_one(weights, cost)
            built += 1
        self.built_total += built
        return built

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> CSRGraph:
        """The CSR the cached structures were built against."""
        return self._graph

    @property
    def num_cached(self) -> int:
        """Number of vertices currently carrying a structure."""
        return len(self._entries)

    def has(self, vertex: int) -> bool:
        """Whether ``vertex`` has a cached structure."""
        return vertex in self._entries

    def _get(self, vertex: int):
        entry = self._entries.get(int(vertex))
        if entry is None:
            raise KeyError(
                f"vertex {vertex} has no sampling structure "
                "(no neighbors with positive weight)"
            )
        return entry


class VertexITSCache(VertexStructureCache):
    """Per-vertex ITS prefix sums (CTPS) over a whole graph.

    ``ctps(v)`` is bit-identical to ``CTPS.from_biases(graph.
    neighbor_weights(v))`` -- the same Kogge-Stone scan builds both.
    """

    def _build_one(self, weights: np.ndarray, cost: Optional[CostModel]) -> CTPS:
        return CTPS.from_biases(weights, cost)

    def ctps(self, vertex: int) -> CTPS:
        """The cached CTPS of ``vertex``'s neighbor pool."""
        return self._get(vertex)


class VertexAliasCache(VertexStructureCache):
    """Per-vertex alias tables (the static-bias engines' preprocessing).

    ``table(v)`` is bit-identical to ``build_alias_table(graph.
    neighbor_weights(v))``; the O(degree) sequential Vose construction is
    exactly the cost the incremental path avoids for untouched vertices.
    """

    def _build_one(self, weights: np.ndarray, cost: Optional[CostModel]) -> AliasTable:
        return build_alias_table(weights, cost)

    def table(self, vertex: int) -> AliasTable:
        """The cached alias table of ``vertex``'s neighbor pool."""
        return self._get(vertex)


def bind(delta, *caches: VertexStructureCache,
         cost: Optional[CostModel] = None) -> None:
    """Wire caches to a :class:`~repro.graph.delta.DeltaGraph`.

    Every compaction (explicit or budget-triggered) then patches each cache
    incrementally with the compaction's touched set.  Replaces any previous
    ``on_compact`` hook.
    """
    def _hook(new_base: CSRGraph, touched: np.ndarray) -> None:
        for cache in caches:
            cache.update(new_base, touched, cost)

    delta.on_compact = _hook
