"""Segmented selection kernels: SELECT over many candidate pools at once.

The scalar primitives in this package (:mod:`repro.selection.its`,
:mod:`repro.selection.collision`, :mod:`repro.selection.alias`,
:mod:`repro.selection.dartboard`) operate on *one* candidate pool -- one
frontier vertex's neighbor list.  The batched execution engine
(:mod:`repro.engine`) instead expresses one MAIN-loop depth step as a flat
array program over *K* pools ("segments") concatenated back to back, which is
exactly how the real GPU kernel sees the work: one launch, one warp per
segment, all warps running the same SELECT.

Everything here is **bit-identical** to running the scalar primitive once per
segment with the same counter-RNG coordinates:

* the segmented Kogge-Stone scan performs the same doubling recurrence as
  :func:`repro.gpusim.scan.kogge_stone_inclusive` (masked so no addition
  crosses a segment boundary), so every partial sum is the same float;
* CTPS normalisation, binary search, bipartite remapping and alias/dartboard
  arithmetic reproduce the scalar operations operation for operation; and
* every cost-model counter is charged per segment exactly as the scalar call
  would charge it, only summed in one NumPy reduction instead of K Python
  calls.

That equivalence is what lets :class:`~repro.api.sampler.GraphSampler` and
:class:`~repro.oom.scheduler.OutOfMemorySampler` switch to the batched engine
without changing a single sampled edge or simulated-time figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.selection.collision import CollisionStrategy

__all__ = [
    "segment_lengths",
    "segment_ids",
    "concat_aranges",
    "segment_positive_counts",
    "take_segments",
    "segmented_kogge_stone_inclusive",
    "SegmentedCTPS",
    "SegmentedSelection",
    "make_segmented_detector",
    "SegmentedBitmapDetector",
    "SegmentedLinearDetector",
    "segmented_sample_with_replacement",
    "segmented_select_without_replacement",
    "segmented_warp_select",
    "segmented_alias_sample_many",
    "segmented_dartboard_sample",
]

_BITS_PER_WORD = 8
_BIPARTITE_MAX_ATTEMPTS = 64
_REPEATED_MAX_ATTEMPTS = 10_000


# --------------------------------------------------------------------------- #
# Segment bookkeeping helpers
# --------------------------------------------------------------------------- #
def segment_lengths(offsets: np.ndarray) -> np.ndarray:
    """Per-segment candidate counts from an ``(K + 1,)`` offsets array."""
    return np.diff(np.asarray(offsets, dtype=np.int64))


def segment_ids(offsets: np.ndarray) -> np.ndarray:
    """Segment index of every flat element (``repeat(arange(K), lengths)``)."""
    lengths = segment_lengths(offsets)
    return np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)


def concat_aranges(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the Python loop."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _ceil_log2(values: np.ndarray) -> np.ndarray:
    """Vectorised ``ceil(log2(v))`` for ``v >= 1`` (0 where ``v <= 1``)."""
    values = np.asarray(values, dtype=np.float64)
    out = np.zeros(values.shape, dtype=np.int64)
    big = values > 1
    if np.any(big):
        out[big] = np.ceil(np.log2(values[big])).astype(np.int64)
    return out


# --------------------------------------------------------------------------- #
# Segmented Kogge-Stone scan
# --------------------------------------------------------------------------- #
_EXACT_SUM_LIMIT = float(2**53)


def segmented_kogge_stone_inclusive(
    values: np.ndarray, offsets: np.ndarray, cost: Optional[CostModel] = None
) -> np.ndarray:
    """Per-segment inclusive Kogge-Stone prefix sum over a flat array.

    Bit-identical to running :func:`repro.gpusim.scan.kogge_stone_inclusive`
    once per segment, via two equivalent routes:

    * **Integer fast path** -- when every value is a non-negative integer
      (uniform biases, degree biases, edge counts) and the grand total stays
      below 2^53, every partial sum is exact in float64, so *any* summation
      order produces the identical bits; a plain segmented ``cumsum`` then
      matches the Kogge-Stone result exactly in O(n).
    * **Bucketed doubling** -- otherwise, segments are grouped by their step
      count ``ceil(log2(n_k))`` and each bucket runs the literal Kogge-Stone
      recurrence (shifts masked at segment boundaries; adding ``+0.0`` to a
      non-negative float is a bitwise no-op).  Work is ``sum(n_k log n_k)``
      -- the same as the per-segment scalar scans -- rather than
      ``total * log(max n_k)``.

    Cost is charged per segment exactly as the scalar scan charges it.
    """
    values = np.asarray(values, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.diff(offsets)
    result = values.copy()
    n = result.size
    steps = _ceil_log2(lengths)
    if n:
        cums = np.cumsum(values)
        if (
            float(cums[-1]) < _EXACT_SUM_LIMIT
            and bool(np.all(values == np.floor(values)))
        ):
            # Integer-valued biases: cumsum is exact, hence Kogge-Stone-equal.
            first = np.minimum(offsets[:-1], n - 1)  # guard zero-length tails
            base = np.repeat(cums[first] - values[first], lengths)
            result = cums - base
        else:
            seg_start = np.repeat(offsets[:-1], lengths)
            for s in np.unique(steps):
                s = int(s)
                if s == 0:
                    continue
                in_bucket = steps == s
                flat = np.repeat(in_bucket, lengths)
                sub = result[flat]
                # Renumber segment starts into the bucket's compacted space.
                renumber = np.cumsum(flat) - 1
                sub_start = renumber[seg_start[flat]]
                sub_pos = np.arange(sub.size, dtype=np.int64)
                offset = 1
                for _ in range(s):
                    src = sub_pos - offset
                    valid = src >= sub_start
                    shifted = np.zeros_like(sub)
                    shifted[valid] = sub[src[valid]]
                    sub = sub + shifted
                    offset *= 2
                result[flat] = sub
    if cost is not None:
        chunks = np.maximum(1, (lengths + 31) // 32)
        cost.prefix_sum_steps += int((steps * chunks).sum())
        cost.warp_steps += int(steps.sum())
        cost.lane_ops += int((steps * np.minimum(lengths, 32)).sum())
        cost.charge_global_bytes(int(lengths.sum()) * 8)
    return result


# --------------------------------------------------------------------------- #
# Segmented CTPS
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SegmentedCTPS:
    """Normalised CTPS of ``K`` candidate pools stored back to back.

    Instead of materialising every segment's ``n_k + 1`` boundary array, the
    space stores the *unnormalised* inclusive prefix sums (``prefix``) plus
    each segment's total.  The scalar boundary value ``F[b]`` of segment
    ``k`` is derived exactly as ``CTPS.from_biases`` derives it --
    ``fl(prefix[b - 1] / total_k)`` with ``F[0] = 0`` and the last boundary
    forced to ``1.0`` -- so computing it on demand (one division per binary-
    search probe) yields bit-identical comparisons while skipping the O(n)
    normalisation pass entirely.
    """

    #: Per-segment inclusive prefix sums, all segments back to back.
    prefix: np.ndarray
    #: ``(K + 1,)`` offsets splitting ``prefix`` by segment.
    offsets: np.ndarray
    #: Un-normalised per-segment bias totals (``S_{n+1}``).
    totals: np.ndarray
    #: Per-segment candidate counts.
    lengths: np.ndarray

    @property
    def num_segments(self) -> int:
        """Number of candidate pools in the space."""
        return int(self.lengths.size)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_biases(
        cls,
        biases: np.ndarray,
        offsets: np.ndarray,
        cost: Optional[CostModel] = None,
        *,
        validate: bool = True,
    ) -> "SegmentedCTPS":
        """Build every segment's CTPS in one pass (matches ``CTPS.from_biases``).

        ``validate=False`` skips the non-negativity / finiteness scans for
        callers that have already validated the biases (the validation has no
        cost-model charges, so skipping it never changes simulated results).
        """
        biases = np.asarray(biases, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.diff(offsets)
        if validate:
            if biases.ndim != 1 or np.any(lengths <= 0):
                raise ValueError("biases must be a non-empty 1-D array")
            if np.any(biases < 0):
                raise ValueError("biases must be non-negative")
            if not np.all(np.isfinite(biases)):
                raise ValueError("biases must be finite")
        inclusive = segmented_kogge_stone_inclusive(biases, offsets, cost)
        totals = inclusive[offsets[1:] - 1]
        if np.any(totals <= 0.0):
            raise ValueError("at least one bias must be positive")
        if cost is not None:
            # Normalisation: one warp step per segment (CTPS.from_biases).
            cost.warp_steps += int(lengths.size)
            cost.lane_ops += int(np.minimum(lengths, 32).sum())
        return cls(
            prefix=inclusive,
            offsets=offsets,
            totals=np.asarray(totals, dtype=np.float64),
            lengths=lengths,
        )

    # ------------------------------------------------------------------ #
    def search(
        self,
        rs: np.ndarray,
        segs: np.ndarray,
        cost: Optional[CostModel] = None,
    ) -> np.ndarray:
        """Binary-search each ``rs[i]`` inside segment ``segs[i]``.

        Identical to ``CTPS.search`` on the segment's boundary array: the
        returned local index is the last boundary ``<= r``.  Only the
        boundaries the search actually probes are computed (one division
        each); each draw is charged ``max(1, ceil(log2(n_k + 1)))`` search
        steps like the scalar binary search.
        """
        rs = np.asarray(rs, dtype=np.float64)
        segs = np.asarray(segs, dtype=np.int64)
        if rs.size and (rs.min() < 0.0 or rs.max() >= 1.0):
            raise ValueError("random number must lie in [0, 1)")
        # Boundary b of segment k (1 <= b <= n-1) equals prefix[b-1]/total;
        # F[0] = 0 is always <= r and the forced F[n] = 1 never is, so the
        # scalar searchsorted over n+1 boundaries reduces to a searchsorted
        # over the first n-1 normalised prefix values.
        base = self.offsets[segs]
        totals = self.totals[segs]
        lo = base.copy()
        hi = base + self.lengths[segs] - 1
        active = lo < hi
        while np.any(active):
            mid = (lo + hi) >> 1
            probe = self.prefix[np.where(active, mid, 0)] / totals
            go_right = active & (probe <= rs)
            stay = active & ~go_right
            lo[go_right] = mid[go_right] + 1
            hi[stay] = mid[stay]
            active = lo < hi
        indices = lo - base
        if cost is not None:
            steps = np.maximum(1, _ceil_log2(self.lengths[segs] + 1))
            cost.binary_search_steps += int(steps.sum())
            cost.charge_global_bytes(int(steps.sum()) * 8)
        return indices

    def region(self, segs: np.ndarray, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-draw ``(l, h)`` CTPS regions (vectorised ``CTPS.region``)."""
        segs = np.asarray(segs, dtype=np.int64)
        idx = np.asarray(indices, dtype=np.int64)
        base = self.offsets[segs]
        totals = self.totals[segs]
        lo = np.where(
            idx == 0, 0.0, self.prefix[base + np.maximum(idx - 1, 0)] / totals
        )
        hi = np.where(
            idx == self.lengths[segs] - 1,
            1.0,
            self.prefix[np.minimum(base + idx, self.prefix.size - 1)] / totals,
        )
        # Same round-off clamp as CTPS.from_biases (regions need l < h <= 1).
        return np.minimum(lo, 1.0), np.minimum(hi, 1.0)

    def segment_boundaries(self, seg: int) -> np.ndarray:
        """One segment's boundary array, bitwise equal to the scalar CTPS."""
        lo, hi = int(self.offsets[seg]), int(self.offsets[seg + 1])
        n = hi - lo
        boundaries = np.empty(n + 1, dtype=np.float64)
        boundaries[0] = 0.0
        boundaries[1:] = self.prefix[lo:hi] / float(self.totals[seg])
        # Same round-off clamp as CTPS.from_biases (bitwise-equal contract).
        np.minimum(boundaries, 1.0, out=boundaries)
        boundaries[-1] = 1.0
        return boundaries


# --------------------------------------------------------------------------- #
# Segmented collision detectors
# --------------------------------------------------------------------------- #
class SegmentedBitmapDetector:
    """Per-segment bitmap detectors stored as one flat word array.

    Reproduces :class:`repro.selection.bitmap.ContiguousBitmap` /
    :class:`~repro.selection.bitmap.StridedBitmap` semantics and cost charges
    for the engine's one-candidate-per-segment access pattern (each scalar
    ``check_and_mark`` is a single-lane ``atomic_cas_bitmap``: one atomic, one
    collision probe, never a word conflict).  Segment ``k``'s words occupy
    ``words[word_offsets[k]:word_offsets[k + 1]]``, so total storage scales
    with the sum of segment sizes like the scalar detectors -- not with
    ``K * max(segment size)``.
    """

    def __init__(self, lengths: np.ndarray, *, strided: bool):
        lengths = np.asarray(lengths, dtype=np.int64)
        if np.any(lengths < 1):
            raise ValueError("detector needs at least one candidate per segment")
        self.lengths = lengths
        self.strided = strided
        if strided:
            min_words = (lengths + _BITS_PER_WORD - 1) // _BITS_PER_WORD
            self.strides = np.maximum(min_words, np.minimum(lengths, 32))
            num_words = self.strides
        else:
            self.strides = None
            num_words = (lengths - 1) // _BITS_PER_WORD + 1
        self.word_offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(num_words, out=self.word_offsets[1:])
        self.words = np.zeros(int(self.word_offsets[-1]), dtype=np.uint8)

    def _locate(self, segs: np.ndarray, candidates: np.ndarray):
        """Flat word index and bit position of each (segment, candidate)."""
        if self.strided:
            stride = self.strides[segs]
            word, bit = candidates % stride, candidates // stride
        else:
            word, bit = candidates // _BITS_PER_WORD, candidates % _BITS_PER_WORD
        return self.word_offsets[segs] + word, bit

    def is_marked(self, segs: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Vectorised ``is_marked`` (no cost, as in the scalar detectors)."""
        word, bit = self._locate(segs, candidates)
        return (self.words[word] >> bit.astype(np.uint8)) & 1 != 0

    def check_and_mark(
        self,
        segs: np.ndarray,
        candidates: np.ndarray,
        cost: Optional[CostModel] = None,
    ) -> np.ndarray:
        """Atomic test-and-set, one lane per segment (``segs`` must be unique)."""
        word, bit = self._locate(segs, candidates)
        masks = (np.uint8(1) << bit.astype(np.uint8)).astype(np.uint8)
        was_set = (self.words[word] & masks) != 0
        self.words[word] |= masks
        if cost is not None:
            cost.charge_atomics(int(segs.size), 0)
            cost.collision_probes += int(segs.size)
        return was_set

    def probes_per_check(self, segs: np.ndarray) -> np.ndarray:
        """Collision probes one ``check_and_mark`` performs per segment (1)."""
        return np.ones(np.asarray(segs).size, dtype=np.int64)

    def marked_candidates(self, seg: int) -> np.ndarray:
        """Bool mask over segment ``seg``'s candidates (for fallback paths)."""
        n = int(self.lengths[seg])
        cand = np.arange(n, dtype=np.int64)
        return self.is_marked(np.full(n, seg, dtype=np.int64), cand)


class SegmentedLinearDetector:
    """Per-segment linear-search detectors (the shared-memory baseline).

    The scalar :class:`~repro.selection.bitmap.LinearSearchDetector` charges
    ``len(selected)`` probes (minimum 1) per check and one atomic per insert;
    membership is tracked in one flat bool array (segment ``k`` at
    ``marked[mark_offsets[k]:mark_offsets[k + 1]]``) so storage stays
    proportional to the sum of segment sizes.
    """

    def __init__(self, lengths: np.ndarray):
        lengths = np.asarray(lengths, dtype=np.int64)
        if np.any(lengths < 1):
            raise ValueError("detector needs at least one candidate per segment")
        self.lengths = lengths
        self.mark_offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=self.mark_offsets[1:])
        self.marked = np.zeros(int(self.mark_offsets[-1]), dtype=bool)
        self.counts = np.zeros(lengths.size, dtype=np.int64)

    def is_marked(self, segs: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        return self.marked[self.mark_offsets[segs] + candidates]

    def probes_per_check(self, segs: np.ndarray) -> np.ndarray:
        return np.maximum(self.counts[segs], 1)

    def check_and_mark(
        self,
        segs: np.ndarray,
        candidates: np.ndarray,
        cost: Optional[CostModel] = None,
    ) -> np.ndarray:
        probes = self.probes_per_check(segs)
        flat = self.mark_offsets[segs] + candidates
        was_set = self.marked[flat]
        fresh = ~was_set
        self.marked[flat[fresh]] = True
        self.counts[segs[fresh]] += 1
        if cost is not None:
            cost.collision_probes += int(probes.sum())
            cost.shared_accesses += int(probes.sum())
            cost.charge_atomics(int(fresh.sum()), 0)
        return was_set

    def marked_candidates(self, seg: int) -> np.ndarray:
        return self.marked[self.mark_offsets[seg] : self.mark_offsets[seg + 1]].copy()


SegmentedDetector = Union[SegmentedBitmapDetector, SegmentedLinearDetector]


def make_segmented_detector(kind: str, lengths: np.ndarray) -> SegmentedDetector:
    """Factory mirroring :func:`repro.selection.bitmap.make_detector`."""
    kind = kind.lower()
    if kind in ("linear", "linear_search", "baseline"):
        return SegmentedLinearDetector(lengths)
    if kind in ("bitmap", "contiguous", "contiguous_bitmap"):
        return SegmentedBitmapDetector(lengths, strided=False)
    if kind in ("strided", "strided_bitmap"):
        return SegmentedBitmapDetector(lengths, strided=True)
    raise ValueError(f"unknown collision detector kind {kind!r}")


# --------------------------------------------------------------------------- #
# Segmented selection results
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SegmentedSelection:
    """Outcome of selecting from ``K`` segments in one batched pass."""

    #: Selected candidate positions (segment-local), all segments back to back.
    indices: np.ndarray
    #: Do-while trip count of every selection, aligned with ``indices``.
    iterations: np.ndarray
    #: ``(K + 1,)`` offsets splitting ``indices`` / ``iterations`` by segment.
    sel_offsets: np.ndarray
    #: Per-segment collision-probe counts (``SelectionResult.probes``).
    probes: np.ndarray
    #: Per-segment collision counts (``SelectionResult.collisions``).
    collisions: np.ndarray

    def segment(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(indices, iterations)`` of segment ``k``."""
        lo, hi = int(self.sel_offsets[k]), int(self.sel_offsets[k + 1])
        return self.indices[lo:hi], self.iterations[lo:hi]


def _coords_at(coords: Sequence[np.ndarray], idx: np.ndarray) -> List[np.ndarray]:
    return [np.asarray(c, dtype=np.int64)[idx] for c in coords]


def _sel_offsets(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


# --------------------------------------------------------------------------- #
# Sampling with replacement (segmented ITS)
# --------------------------------------------------------------------------- #
def segmented_sample_with_replacement(
    biases: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    rng: CounterRNG,
    coords: Sequence[np.ndarray],
    cost: Optional[CostModel] = None,
    *,
    validate: bool = True,
) -> SegmentedSelection:
    """Batched :func:`repro.selection.its.sample_with_replacement`.

    ``coords`` are per-segment stream coordinates (each an array of length
    ``K``); segment ``k``'s draws are keyed ``(*coords[k], lane)`` exactly as
    the scalar call keys them, so the selected indices are bit-identical.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("count must be non-negative")
    ctps = SegmentedCTPS.from_biases(biases, offsets, cost, validate=validate)
    total = int(counts.sum())
    if total == 0:
        return SegmentedSelection(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            _sel_offsets(counts),
            np.zeros(counts.size, dtype=np.int64),
            np.zeros(counts.size, dtype=np.int64),
        )
    seg_of_draw = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    lanes = concat_aranges(counts)
    rs = np.atleast_1d(rng.uniform(*(_coords_at(coords, seg_of_draw) + [lanes])))
    if cost is not None:
        cost.rng_draws += total
        cost.selection_attempts += total
    indices = ctps.search(rs, seg_of_draw, cost)
    return SegmentedSelection(
        indices=indices,
        iterations=np.ones(total, dtype=np.int64),
        sel_offsets=_sel_offsets(counts),
        probes=np.zeros(counts.size, dtype=np.int64),
        collisions=np.zeros(counts.size, dtype=np.int64),
    )


# --------------------------------------------------------------------------- #
# Sampling without replacement (segmented collision strategies)
# --------------------------------------------------------------------------- #
def segmented_select_without_replacement(
    biases: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    rng: CounterRNG,
    coords: Sequence[np.ndarray],
    *,
    strategy: Union[str, CollisionStrategy] = CollisionStrategy.BIPARTITE,
    detector: str = "strided_bitmap",
    cost: Optional[CostModel] = None,
    validate: bool = True,
    positive_counts: Optional[np.ndarray] = None,
) -> SegmentedSelection:
    """Batched :func:`repro.selection.collision.select_without_replacement`.

    Lanes are processed warp-style: lane ``l`` of every segment runs
    concurrently (one vectorised pass), with the per-segment detector state
    carrying the already-selected candidates between lanes.  Draw keys, CTPS
    arithmetic, collision handling and every cost charge replicate the scalar
    strategy implementations, so indices, iteration counts and cost totals
    are bit-identical to ``K`` scalar calls.  ``positive_counts`` lets a
    caller that already counted positive biases per segment skip that pass.
    """
    biases = np.asarray(biases, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    strategy = CollisionStrategy.coerce(strategy)
    lengths = np.diff(offsets)
    if np.any(counts < 0):
        raise ValueError("count must be non-negative")
    positive = (
        positive_counts
        if positive_counts is not None
        else segment_positive_counts(biases, offsets)
    )
    if np.any(counts > positive):
        raise ValueError(
            "cannot select more distinct candidates than have positive bias"
        )

    det = make_segmented_detector(detector, lengths)
    ctps = SegmentedCTPS.from_biases(biases, offsets, cost, validate=validate)
    num_segments = counts.size
    # Selections are stored flat (segment k's lane l at sel_offsets[k] + l)
    # so storage scales with sum(counts), not K * max(counts).
    sel_offsets = _sel_offsets(counts)
    indices = np.zeros(int(sel_offsets[-1]), dtype=np.int64)
    iterations = np.zeros(int(sel_offsets[-1]), dtype=np.int64)
    probes = np.zeros(num_segments, dtype=np.int64)
    collisions = np.zeros(num_segments, dtype=np.int64)

    if strategy is CollisionStrategy.BIPARTITE:
        _bipartite_lanes(
            ctps, det, rng, coords, counts, sel_offsets,
            indices, iterations, probes, collisions, cost,
        )
    elif strategy is CollisionStrategy.REPEATED:
        _repeated_lanes(
            ctps, det, rng, coords, counts, sel_offsets,
            indices, iterations, probes, collisions, cost,
        )
    else:  # CollisionStrategy.UPDATED
        _updated_lanes(
            ctps, det, rng, coords, counts, sel_offsets,
            indices, iterations, probes, collisions, cost,
        )

    return SegmentedSelection(indices, iterations, sel_offsets, probes, collisions)


def segment_positive_counts(biases: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Number of positive biases per segment."""
    cums = np.zeros(biases.size + 1, dtype=np.int64)
    np.cumsum(biases > 0, out=cums[1:])
    return cums[offsets[1:]] - cums[offsets[:-1]]


def take_segments(
    values: np.ndarray, offsets: np.ndarray, segs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Compact a flat segmented array down to the given segments."""
    lengths = np.diff(offsets)[segs]
    sub_offsets = np.zeros(segs.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=sub_offsets[1:])
    picks = np.repeat(offsets[:-1][segs], lengths) + concat_aranges(lengths)
    return values[picks], sub_offsets


def _probe_charges(det: SegmentedDetector, segs: np.ndarray, probes: np.ndarray) -> None:
    """Accumulate the per-segment probe totals reported by SelectionResult."""
    np.add.at(probes, segs, det.probes_per_check(segs))


def _bipartite_lanes(
    ctps: SegmentedCTPS,
    det: SegmentedDetector,
    rng: CounterRNG,
    coords: Sequence[np.ndarray],
    counts: np.ndarray,
    sel_offsets: np.ndarray,
    indices: np.ndarray,
    iterations: np.ndarray,
    probes: np.ndarray,
    collisions: np.ndarray,
    cost: Optional[CostModel],
) -> None:
    """Bipartite region search, lane-synchronous across segments."""
    max_count = int(counts.max()) if counts.size else 0
    near_one = np.nextafter(1.0, 0.0)
    for lane in range(max_count):
        pending = np.nonzero(counts > lane)[0]
        remaps = np.zeros(pending.size, dtype=np.int64)
        for attempt in range(_BIPARTITE_MAX_ATTEMPTS):
            if pending.size == 0:
                break
            rs = np.atleast_1d(
                rng.uniform(*(_coords_at(coords, pending) + [lane, 2 * attempt]))
            )
            if cost is not None:
                cost.rng_draws += int(pending.size)
                cost.selection_attempts += int(pending.size)
            idx = ctps.search(rs, pending, cost)
            marked = det.is_marked(pending, idx)
            if np.any(marked):
                m_segs = pending[marked]
                lo, hi = ctps.region(m_segs, idx[marked])
                if np.any(hi - lo >= 1.0):
                    raise RuntimeError("sole candidate already selected")
                if cost is not None:
                    # One single-lane warp step per remapped draw.
                    cost.selection_collisions += int(m_segs.size)
                    cost.rng_draws += int(m_segs.size)
                    cost.warp_steps += int(m_segs.size)
                    cost.lane_ops += int(m_segs.size)
                fresh = np.atleast_1d(
                    rng.uniform(*(_coords_at(coords, m_segs) + [lane, 2 * attempt + 1]))
                )
                delta = hi - lo
                lam = 1.0 / (1.0 - delta)
                r2 = fresh / lam
                r2 = np.where(r2 < lo, r2, r2 + delta)
                r2 = np.minimum(r2, near_one)
                idx[marked] = ctps.search(r2, m_segs, cost)
                remaps[marked] += 1
            _probe_charges(det, pending, probes)
            was_set = det.check_and_mark(pending, idx, cost)
            done = ~was_set
            done_segs = pending[done]
            indices[sel_offsets[done_segs] + lane] = idx[done]
            iterations[sel_offsets[done_segs] + lane] = attempt + 1
            collisions[done_segs] += remaps[done] + attempt
            if cost is not None:
                cost.selection_collisions += int(was_set.sum())
            pending = pending[was_set]
            remaps = remaps[was_set]
        else:
            _bipartite_fallback(
                ctps, det, rng, coords, pending, remaps, lane, sel_offsets,
                indices, iterations, probes, collisions, cost,
            )


def _bipartite_fallback(
    ctps: SegmentedCTPS,
    det: SegmentedDetector,
    rng: CounterRNG,
    coords: Sequence[np.ndarray],
    pending: np.ndarray,
    remaps: np.ndarray,
    lane: int,
    sel_offsets: np.ndarray,
    indices: np.ndarray,
    iterations: np.ndarray,
    probes: np.ndarray,
    collisions: np.ndarray,
    cost: Optional[CostModel],
) -> None:
    """Pathological-skew fallback: one updated-CTPS draw per stuck segment."""
    from repro.selection.ctps import CTPS  # deferred: avoids import cycle cost

    for j, seg in enumerate(pending):
        seg = int(seg)
        boundaries = ctps.segment_boundaries(seg)
        marked = det.marked_candidates(seg)
        probabilities = np.diff(boundaries)
        if np.all(marked | (probabilities <= 0.0)):
            raise RuntimeError(
                "every candidate with positive probability is already selected"
            )
        rebuilt = np.maximum(probabilities, 0.0) * float(ctps.totals[seg])
        rebuilt[np.nonzero(marked)[0]] = 0.0
        updated = CTPS.from_biases(rebuilt, cost)
        seg_coords = [int(np.asarray(c)[seg]) for c in coords]
        r = float(rng.uniform(*(seg_coords + [lane, 2 * _BIPARTITE_MAX_ATTEMPTS])))
        if cost is not None:
            cost.rng_draws += 1
            cost.selection_attempts += 1
        index = updated.search(r, cost)
        one = np.array([seg], dtype=np.int64)
        _probe_charges(det, one, probes)
        det.check_and_mark(one, np.array([index], dtype=np.int64), cost)
        indices[sel_offsets[seg] + lane] = index
        iterations[sel_offsets[seg] + lane] = _BIPARTITE_MAX_ATTEMPTS + 1
        collisions[seg] += int(remaps[j]) + _BIPARTITE_MAX_ATTEMPTS


def _repeated_lanes(
    ctps: SegmentedCTPS,
    det: SegmentedDetector,
    rng: CounterRNG,
    coords: Sequence[np.ndarray],
    counts: np.ndarray,
    sel_offsets: np.ndarray,
    indices: np.ndarray,
    iterations: np.ndarray,
    probes: np.ndarray,
    collisions: np.ndarray,
    cost: Optional[CostModel],
) -> None:
    """Repeated sampling: fixed CTPS, redraw on collision."""
    max_count = int(counts.max()) if counts.size else 0
    for lane in range(max_count):
        pending = np.nonzero(counts > lane)[0]
        for attempt in range(_REPEATED_MAX_ATTEMPTS):
            if pending.size == 0:
                break
            rs = np.atleast_1d(
                rng.uniform(*(_coords_at(coords, pending) + [lane, attempt]))
            )
            if cost is not None:
                cost.rng_draws += int(pending.size)
                cost.selection_attempts += int(pending.size)
            idx = ctps.search(rs, pending, cost)
            _probe_charges(det, pending, probes)
            was_set = det.check_and_mark(pending, idx, cost)
            done = ~was_set
            done_segs = pending[done]
            indices[sel_offsets[done_segs] + lane] = idx[done]
            iterations[sel_offsets[done_segs] + lane] = attempt + 1
            collisions[pending[was_set]] += 1
            if cost is not None:
                cost.selection_collisions += int(was_set.sum())
            pending = pending[was_set]
        else:
            # Attempt budget exhausted: take the first unselected candidate
            # with positive probability, keeping the full attempt count.
            for seg in pending:
                seg = int(seg)
                probabilities = np.diff(ctps.segment_boundaries(seg))
                marked = det.marked_candidates(seg)
                for candidate in range(probabilities.size):
                    if probabilities[candidate] > 0 and not marked[candidate]:
                        one = np.array([seg], dtype=np.int64)
                        _probe_charges(det, one, probes)
                        det.check_and_mark(
                            one, np.array([candidate], dtype=np.int64), cost
                        )
                        indices[sel_offsets[seg] + lane] = candidate
                        break
                iterations[sel_offsets[seg] + lane] = _REPEATED_MAX_ATTEMPTS


def _updated_lanes(
    ctps: SegmentedCTPS,
    det: SegmentedDetector,
    rng: CounterRNG,
    coords: Sequence[np.ndarray],
    counts: np.ndarray,
    sel_offsets: np.ndarray,
    indices: np.ndarray,
    iterations: np.ndarray,
    probes: np.ndarray,
    collisions: np.ndarray,
    cost: Optional[CostModel],
) -> None:
    """Updated sampling: rebuild the CTPS without selected candidates per lane."""
    max_count = int(counts.max()) if counts.size else 0
    base_biases = None
    for lane in range(max_count):
        segs = np.nonzero(counts > lane)[0]
        if segs.size == 0:
            break
        if lane == 0:
            current, local = ctps, segs
        else:
            # Rebuild from the *original* CTPS with selected candidates
            # zeroed, exactly as CTPS.exclude does (diff * total, then zero).
            if base_biases is None:
                base_biases = _reconstruct_biases(ctps)
            sub_biases, sub_offsets = take_segments(
                _zero_marked(base_biases, ctps, det, segs), ctps.offsets, segs
            )
            current = SegmentedCTPS.from_biases(sub_biases, sub_offsets, cost)
            local = np.arange(segs.size, dtype=np.int64)
        rs = np.atleast_1d(rng.uniform(*(_coords_at(coords, segs) + [lane, 0])))
        if cost is not None:
            cost.rng_draws += int(segs.size)
            cost.selection_attempts += int(segs.size)
        idx = current.search(rs, local, cost)
        _probe_charges(det, segs, probes)
        det.check_and_mark(segs, idx, cost)
        indices[sel_offsets[segs] + lane] = idx
        iterations[sel_offsets[segs] + lane] = 1


def _reconstruct_biases(ctps: SegmentedCTPS) -> np.ndarray:
    """``diff(boundaries) * total`` per segment (bitwise ``CTPS.exclude`` input)."""
    seg_of = np.repeat(np.arange(ctps.num_segments, dtype=np.int64), ctps.lengths)
    norm = ctps.prefix / ctps.totals[seg_of]
    norm[ctps.offsets[1:] - 1] = 1.0  # the scalar CTPS forces F[n] = 1.0
    widths = np.empty_like(norm)
    if norm.size:
        widths[0] = norm[0]
        widths[1:] = norm[1:] - norm[:-1]
        # Segment-leading candidates own [0, F[1]): width is F[1] itself,
        # which equals F[1] - 0.0 bit for bit.
        widths[ctps.offsets[:-1]] = norm[ctps.offsets[:-1]]
    return np.maximum(widths, 0.0) * ctps.totals[seg_of]


def _zero_marked(
    base_biases: np.ndarray,
    ctps: SegmentedCTPS,
    det: SegmentedDetector,
    segs: np.ndarray,
) -> np.ndarray:
    """Copy of the reconstructed biases with marked candidates zeroed."""
    biases = base_biases.copy()
    for seg in segs:
        seg = int(seg)
        marked = det.marked_candidates(seg)
        lo = int(ctps.offsets[seg])
        biases[lo : lo + marked.size][marked] = 0.0
    return biases


# --------------------------------------------------------------------------- #
# Warp-level wrapper (the engine's SELECT)
# --------------------------------------------------------------------------- #
def segmented_warp_select(
    biases: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    rng: CounterRNG,
    coords: Sequence[np.ndarray],
    *,
    with_replacement: bool,
    strategy: Union[str, CollisionStrategy] = CollisionStrategy.BIPARTITE,
    detector: str = "strided_bitmap",
    cost: Optional[CostModel] = None,
    validate: bool = True,
    positive_counts: Optional[np.ndarray] = None,
) -> SegmentedSelection:
    """Batched :func:`repro.api.select.warp_select` over ``K`` segments.

    ``coords`` must already include the per-segment warp id as its last
    coordinate (the scalar path appends ``warp.warp_id`` the same way), and
    the per-warp step charges mirror ``warp_select``: one lock-step
    instruction for with-replacement selection, a divergent-loop charge for
    the collision strategies.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("count must be non-negative")
    active = counts > 0
    if with_replacement:
        result = segmented_sample_with_replacement(
            biases, offsets, counts, rng, coords, cost, validate=validate
        )
        if cost is not None:
            cost.warp_steps += int(active.sum())
            cost.lane_ops += int(np.minimum(counts[active], 32).sum())
        return result
    result = segmented_select_without_replacement(
        biases, offsets, counts, rng, coords,
        strategy=strategy, detector=detector, cost=cost,
        validate=validate, positive_counts=positive_counts,
    )
    if cost is not None and np.any(active):
        # charge_divergent_loop per segment: the warp steps as long as its
        # slowest lane; every still-running lane pays each step.
        starts = result.sel_offsets[:-1][active]
        cost.warp_steps += int(np.maximum.reduceat(result.iterations, starts).sum())
        cost.lane_ops += int(result.iterations.sum())
    return result


# --------------------------------------------------------------------------- #
# Segmented alias sampling
# --------------------------------------------------------------------------- #
def segmented_alias_sample_many(
    prob: np.ndarray,
    alias: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    rng: CounterRNG,
    coords: Sequence[np.ndarray],
    cost: Optional[CostModel] = None,
) -> SegmentedSelection:
    """Batched :meth:`repro.selection.alias.AliasTable.sample_many`.

    ``prob`` / ``alias`` hold every segment's alias table back to back (the
    segment-local alias indices, as built per pool).  Draw keys and costs
    match ``sample_many`` called once per segment.
    """
    prob = np.asarray(prob, dtype=np.float64)
    alias = np.asarray(alias, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("count must be non-negative")
    lengths = np.diff(offsets)
    total = int(counts.sum())
    if total == 0:
        return SegmentedSelection(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            _sel_offsets(counts),
            np.zeros(counts.size, dtype=np.int64),
            np.zeros(counts.size, dtype=np.int64),
        )
    seg_of_draw = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    lanes = concat_aranges(counts)
    draw_coords = _coords_at(coords, seg_of_draw)
    r_bin = np.atleast_1d(rng.uniform(*(draw_coords + [lanes, 0])))
    r_flip = np.atleast_1d(rng.uniform(*(draw_coords + [lanes, 1])))
    n = lengths[seg_of_draw]
    bins = np.minimum((r_bin * n).astype(np.int64), n - 1)
    flat_bins = offsets[seg_of_draw] + bins
    take_owner = r_flip < prob[flat_bins]
    indices = np.where(take_owner, bins, alias[flat_bins]).astype(np.int64)
    if cost is not None:
        active = counts > 0
        cost.rng_draws += 2 * total
        cost.selection_attempts += total
        cost.warp_steps += int(active.sum())
        cost.lane_ops += int(np.minimum(counts[active], 32).sum())
    return SegmentedSelection(
        indices=indices,
        iterations=np.ones(total, dtype=np.int64),
        sel_offsets=_sel_offsets(counts),
        probes=np.zeros(counts.size, dtype=np.int64),
        collisions=np.zeros(counts.size, dtype=np.int64),
    )


# --------------------------------------------------------------------------- #
# Segmented dartboard sampling
# --------------------------------------------------------------------------- #
def segmented_dartboard_sample(
    biases: np.ndarray,
    offsets: np.ndarray,
    rng: CounterRNG,
    coords: Sequence[np.ndarray],
    cost: Optional[CostModel] = None,
    max_trials: int = 10_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`repro.selection.dartboard.dartboard_sample` (one pick per segment).

    Returns ``(indices, trials)`` arrays of length ``K``; rejection trials
    proceed lock-step across all still-rejecting segments, with per-trial
    draws and charges identical to the scalar loop.
    """
    biases = np.asarray(biases, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.diff(offsets)
    if np.any(lengths < 1):
        raise ValueError("biases must be a non-empty 1-D array")
    if np.any(biases < 0) or not np.all(np.isfinite(biases)):
        raise ValueError("biases must be non-negative and finite")
    max_bias = np.maximum.reduceat(biases, offsets[:-1])
    if np.any(max_bias <= 0.0):
        raise ValueError("at least one bias must be positive")

    num_segments = lengths.size
    indices = np.full(num_segments, -1, dtype=np.int64)
    trials = np.zeros(num_segments, dtype=np.int64)
    pending = np.arange(num_segments, dtype=np.int64)
    for trial in range(max_trials):
        if pending.size == 0:
            return indices, trials
        draw_coords = _coords_at(coords, pending)
        rx = np.atleast_1d(rng.uniform(*(draw_coords + [2 * trial])))
        ry = np.atleast_1d(rng.uniform(*(draw_coords + [2 * trial + 1])))
        n = lengths[pending]
        idx = np.minimum((rx * n).astype(np.int64), n - 1)
        height = ry * max_bias[pending]
        if cost is not None:
            cost.rng_draws += 2 * int(pending.size)
            cost.selection_attempts += int(pending.size)
            cost.warp_steps += int(pending.size)
            cost.lane_ops += int(pending.size)
        hit = height < biases[offsets[pending] + idx]
        done = pending[hit]
        indices[done] = idx[hit]
        trials[done] = trial + 1
        pending = pending[~hit]
    raise RuntimeError(f"dartboard sampling failed to accept within {max_trials} trials")
