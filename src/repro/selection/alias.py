"""The alias method (Walker 1977) for O(1) biased selection.

The alias method converts the sparse dartboard into a dense one (Fig. 1(d)):
every bin of a table of ``n`` bins holds at most two candidates -- its owner
and an *alias* -- so a selection is one uniform bin pick plus one coin flip.
Selection is O(1), but building the table is O(n) sequential work per
candidate pool, which is the preprocessing cost the paper says makes it a
poor fit for GPUs with dynamic biases.  KnightKing pre-computes alias tables
for *static* transition probabilities; our KnightKing-like baseline does the
same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG

__all__ = ["AliasTable", "build_alias_table"]


@dataclass(frozen=True)
class AliasTable:
    """Dense alias table: per-bin acceptance probability and alias candidate."""

    prob: np.ndarray
    alias: np.ndarray

    @property
    def num_candidates(self) -> int:
        """Number of candidates (bins) in the table."""
        return int(self.prob.size)

    def sample(
        self,
        rng: CounterRNG,
        *coords: int,
        cost: Optional[CostModel] = None,
    ) -> int:
        """Draw one candidate index in O(1)."""
        n = self.num_candidates
        r_bin = rng.uniform(*(list(coords) + [0]))
        r_flip = rng.uniform(*(list(coords) + [1]))
        bin_index = min(int(r_bin * n), n - 1)
        if cost is not None:
            cost.rng_draws += 2
            cost.selection_attempts += 1
            cost.charge_warp_step(1, active_lanes=1)
        if r_flip < self.prob[bin_index]:
            return int(bin_index)
        return int(self.alias[bin_index])

    def sample_many(
        self,
        count: int,
        rng: CounterRNG,
        *coords: int,
        cost: Optional[CostModel] = None,
    ) -> np.ndarray:
        """Draw ``count`` i.i.d. candidate indices (vectorised)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        n = self.num_candidates
        lanes = np.arange(count, dtype=np.int64)
        r_bin = np.atleast_1d(rng.uniform(*(list(coords) + [lanes, 0])))
        r_flip = np.atleast_1d(rng.uniform(*(list(coords) + [lanes, 1])))
        bins = np.minimum((r_bin * n).astype(np.int64), n - 1)
        take_owner = r_flip < self.prob[bins]
        result = np.where(take_owner, bins, self.alias[bins])
        if cost is not None:
            cost.rng_draws += 2 * count
            cost.selection_attempts += count
            cost.charge_warp_step(1, active_lanes=min(count, 32))
        return result.astype(np.int64)

    def probabilities(self) -> np.ndarray:
        """Reconstruct the selection probability of every candidate."""
        n = self.num_candidates
        probs = self.prob.copy()
        np.add.at(probs, self.alias, 1.0 - self.prob)
        return probs / n


def build_alias_table(biases: np.ndarray, cost: Optional[CostModel] = None) -> AliasTable:
    """Build an alias table with Vose's O(n) algorithm.

    Construction charges O(n) warp steps to the cost model; this is the
    preprocessing cost static-probability engines pay up front.
    """
    biases = np.asarray(biases, dtype=np.float64)
    if biases.ndim != 1 or biases.size == 0:
        raise ValueError("biases must be a non-empty 1-D array")
    if np.any(biases < 0) or not np.all(np.isfinite(biases)):
        raise ValueError("biases must be non-negative and finite")
    total = biases.sum()
    if total <= 0:
        raise ValueError("at least one bias must be positive")

    n = biases.size
    scaled = biases * (n / total)
    prob = np.zeros(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)

    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    scaled = scaled.copy()
    while small and large:
        s = small.pop()
        l = large.pop()
        prob[s] = scaled[s]
        alias[s] = l
        scaled[l] = (scaled[l] + scaled[s]) - 1.0
        if scaled[l] < 1.0:
            small.append(l)
        else:
            large.append(l)
    for remaining in large + small:
        prob[remaining] = 1.0
        alias[remaining] = remaining

    if cost is not None:
        # O(n) sequential construction plus the table writes.
        cost.charge_warp_step(n, active_lanes=1)
        cost.charge_global_bytes(prob.nbytes + alias.nbytes)
    return AliasTable(prob=prob, alias=alias)
