"""Dartboard (2-D rejection) sampling.

The dartboard method (Fig. 1(c)) throws a dart at a 2-D board whose bars are
the candidate biases: pick a candidate uniformly (the x coordinate) and a
height uniformly in ``[0, max_bias)`` (the y coordinate); accept when the
height falls under the candidate's bar, otherwise throw again.  For
scale-free graphs where a few candidates have much larger biases than the
rest, the acceptance rate is poor -- which is why C-SAW prefers inverse
transform sampling and why KnightKing needs alias tables for static biases.

It is implemented here both as a baseline selection method and because the
KnightKing-like baseline engine uses it for dynamic biases.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG

__all__ = ["dartboard_sample"]

_MAX_TRIALS = 10_000


def dartboard_sample(
    biases: np.ndarray,
    rng: CounterRNG,
    *coords: int,
    cost: Optional[CostModel] = None,
    max_trials: int = _MAX_TRIALS,
) -> Tuple[int, int]:
    """Select one candidate by rejection sampling.

    Returns
    -------
    (index, trials):
        The selected candidate index and how many darts were thrown.  The
        trial count is the quantity that blows up on skewed bias
        distributions.

    Raises
    ------
    RuntimeError
        If no dart lands within ``max_trials`` throws (pathological input,
        e.g. a single huge bias among thousands of zeros combined with an
        adversarial RNG stream).
    """
    biases = np.asarray(biases, dtype=np.float64)
    if biases.ndim != 1 or biases.size == 0:
        raise ValueError("biases must be a non-empty 1-D array")
    if np.any(biases < 0) or not np.all(np.isfinite(biases)):
        raise ValueError("biases must be non-negative and finite")
    max_bias = float(biases.max())
    if max_bias <= 0.0:
        raise ValueError("at least one bias must be positive")
    n = biases.size

    for trial in range(max_trials):
        rx = rng.uniform(*(list(coords) + [2 * trial]))
        ry = rng.uniform(*(list(coords) + [2 * trial + 1]))
        index = min(int(rx * n), n - 1)
        height = ry * max_bias
        if cost is not None:
            cost.rng_draws += 2
            cost.selection_attempts += 1
            cost.charge_warp_step(1, active_lanes=1)
        if height < biases[index]:
            return index, trial + 1
    raise RuntimeError(f"dartboard sampling failed to accept within {max_trials} trials")
