"""Bias-based vertex selection (Section II-B and IV of the paper).

Everything C-SAW does reduces to one primitive: given a pool of candidate
vertices and a non-negative *bias* per candidate, select one or more of them
with probability proportional to the bias (Theorem 1).  This package contains
every selection technique the paper discusses:

* :mod:`~repro.selection.ctps` -- the Cumulative Transition Probability Space
  (normalised prefix sums of biases) that inverse transform sampling searches.
* :mod:`~repro.selection.its` -- inverse transform sampling, the method C-SAW
  adopts for GPUs.
* :mod:`~repro.selection.dartboard` -- 2-D rejection sampling (KnightKing's
  dynamic method).
* :mod:`~repro.selection.alias` -- the alias method (KnightKing's static
  method), including its O(n) preprocessing.
* :mod:`~repro.selection.bipartite` -- **bipartite region search**, the
  paper's novel collision-mitigation technique (Theorem 2).
* :mod:`~repro.selection.bitmap` -- contiguous and strided per-warp bitmaps
  plus the shared-memory linear-search baseline for collision detection.
* :mod:`~repro.selection.collision` -- sampling *without* replacement using
  repeated sampling, updated sampling or bipartite region search, with the
  iteration/probe statistics Figures 10-12 report.
* :mod:`~repro.selection.segmented` -- batched (segmented) counterparts of
  the above used by the execution engine: SELECT over ``K`` candidate pools
  in one vectorised pass, bit-identical to ``K`` scalar calls.
"""

from repro.selection.ctps import CTPS
from repro.selection.its import sample_with_replacement, sample_one
from repro.selection.dartboard import dartboard_sample
from repro.selection.alias import AliasTable, build_alias_table
from repro.selection.bipartite import bipartite_remap, bipartite_search_select
from repro.selection.bitmap import (
    CollisionDetector,
    ContiguousBitmap,
    StridedBitmap,
    LinearSearchDetector,
    make_detector,
)
from repro.selection.collision import (
    CollisionStrategy,
    SelectionResult,
    select_without_replacement,
)
from repro.selection.incremental import (
    VertexAliasCache,
    VertexITSCache,
    bind as bind_caches,
)
from repro.selection.segmented import (
    SegmentedCTPS,
    SegmentedSelection,
    segmented_alias_sample_many,
    segmented_dartboard_sample,
    segmented_sample_with_replacement,
    segmented_select_without_replacement,
    segmented_warp_select,
)

__all__ = [
    "CTPS",
    "sample_with_replacement",
    "sample_one",
    "dartboard_sample",
    "AliasTable",
    "build_alias_table",
    "bipartite_remap",
    "bipartite_search_select",
    "CollisionDetector",
    "ContiguousBitmap",
    "StridedBitmap",
    "LinearSearchDetector",
    "make_detector",
    "CollisionStrategy",
    "SelectionResult",
    "select_without_replacement",
    "VertexITSCache",
    "VertexAliasCache",
    "bind_caches",
    "SegmentedCTPS",
    "SegmentedSelection",
    "segmented_alias_sample_many",
    "segmented_dartboard_sample",
    "segmented_sample_with_replacement",
    "segmented_select_without_replacement",
    "segmented_warp_select",
]
