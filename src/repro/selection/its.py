"""Inverse transform sampling (the selection method C-SAW adopts).

Sampling *with* replacement -- the random-walk case where one neighbor is
picked per step and repeats are allowed -- needs no collision handling: build
the CTPS once, draw a random number per selection and binary-search it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.selection.ctps import CTPS

__all__ = ["sample_one", "sample_with_replacement"]


def sample_one(
    biases: np.ndarray,
    rng: CounterRNG,
    *coords: int,
    cost: Optional[CostModel] = None,
) -> int:
    """Select a single candidate index proportionally to ``biases``.

    ``coords`` are the counter-RNG stream coordinates (for example
    ``(instance, depth)``) so the draw is reproducible.
    """
    ctps = CTPS.from_biases(biases, cost)
    r = float(rng.uniform(*coords)) if coords else float(rng.uniform(0))
    if cost is not None:
        cost.rng_draws += 1
        cost.selection_attempts += 1
    return ctps.search(r, cost)


def sample_with_replacement(
    biases: np.ndarray,
    count: int,
    rng: CounterRNG,
    *coords: int,
    cost: Optional[CostModel] = None,
) -> np.ndarray:
    """Select ``count`` candidate indices i.i.d. proportionally to ``biases``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    ctps = CTPS.from_biases(biases, cost)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    lanes = np.arange(count, dtype=np.int64)
    rs = rng.uniform(*(list(coords) + [lanes])) if coords else rng.uniform(lanes)
    if cost is not None:
        cost.rng_draws += count
        cost.selection_attempts += count
    return ctps.search_many(np.atleast_1d(rs), cost)
