"""Bipartite region search (Section IV-B, Theorem 2).

When a lane's random number lands in a CTPS region that belongs to an
already-selected candidate, the naive choices are to throw the number away
and retry (*repeated sampling*) or to rebuild the CTPS without the selected
candidate (*updated sampling*).  Bipartite region search gets the best of
both: it keeps the original CTPS and instead *remaps the random number* so
that the resulting selection is identical to what updated sampling would have
produced.

Given the selected region ``(l, h)`` with width ``delta = h - l`` and scale
``lambda = 1 / (1 - delta)``:

1. shrink the draw back to the un-normalised space: ``r = r' / lambda``;
2. if ``r < l`` the draw belongs to the left part of the board -- search
   ``(0, l)`` with ``r`` as is;
3. otherwise it belongs to the right part -- shift it past the selected
   region (``r += delta``) and search ``(h, 1)``.

Theorem 2 proves the mapping reproduces the updated-CTPS boundaries exactly,
so the selection distribution is unchanged while the expensive prefix-sum
recomputation is avoided.  When the remapped number lands in *another*
already-selected region (possible once several candidates are excluded), the
algorithm draws a fresh random number and starts over (step 1 of the paper's
procedure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.selection.bitmap import CollisionDetector
from repro.selection.ctps import CTPS

__all__ = ["bipartite_remap", "bipartite_search_select", "BipartiteOutcome"]


def bipartite_remap(r_prime: float, region: Tuple[float, float]) -> float:
    """Remap a random number that hit the pre-selected CTPS region ``(l, h)``.

    Returns the adjusted random number positioned in the original CTPS such
    that searching it there is equivalent to searching ``r_prime`` in the
    updated (selected-candidate-removed) CTPS.
    """
    l, h = region
    if not (0.0 <= l < h <= 1.0):
        raise ValueError(f"invalid CTPS region ({l}, {h})")
    delta = h - l
    if delta >= 1.0:
        raise ValueError("cannot remap when the selected region covers the whole CTPS")
    lam = 1.0 / (1.0 - delta)
    r = r_prime / lam
    if r < l:
        return r
    return r + delta


@dataclass(frozen=True)
class BipartiteOutcome:
    """Result of one bipartite-region-search selection."""

    index: int
    iterations: int
    remaps: int


def bipartite_search_select(
    ctps: CTPS,
    detector: CollisionDetector,
    rng: CounterRNG,
    *coords: int,
    cost: Optional[CostModel] = None,
    max_attempts: int = 64,
) -> BipartiteOutcome:
    """Select one not-yet-selected candidate using bipartite region search.

    ``detector`` records which candidates are already selected (shared with
    the other lanes of the warp); the chosen candidate is marked before
    returning.  ``iterations`` counts do-while trips (fresh random draws) and
    ``remaps`` counts how many of those trips applied the region remapping.

    When several candidates are already selected and the transition
    probabilities are extremely skewed, the remapped draw can keep landing on
    other selected regions (the paper's step "go to 1").  After
    ``max_attempts`` such trips the implementation falls back to one updated
    (rebuilt) CTPS draw, which is exact and bounded in cost; the fallback is
    charged to the cost model like any updated-sampling rebuild.

    Raises
    ------
    RuntimeError
        If every candidate with positive probability is already selected.
    """
    remaps = 0
    for attempt in range(max_attempts):
        r = float(rng.uniform(*(list(coords) + [2 * attempt])))
        if cost is not None:
            cost.rng_draws += 1
            cost.selection_attempts += 1
        index = ctps.search(r, cost)
        region = ctps.region(index)
        if detector.is_marked(index):
            # Collision: remap a fresh draw around the selected region so the
            # retry is distributed exactly as inverse transform sampling on
            # the updated CTPS -- without ever rebuilding it.  (The paper's
            # presentation reuses the collided draw; doing so skews the
            # conditional distribution towards the regions adjacent to the
            # selected one, so we draw anew, which keeps both the cost
            # advantage and Theorem 2's distribution equivalence.)
            if region[1] - region[0] >= 1.0:
                raise RuntimeError("sole candidate already selected")
            remaps += 1
            if cost is not None:
                cost.selection_collisions += 1
                cost.rng_draws += 1
                cost.charge_warp_step(1, active_lanes=1)
            fresh = float(rng.uniform(*(list(coords) + [2 * attempt + 1])))
            r = bipartite_remap(fresh, region)
            # Guard against floating point nudging r to exactly 1.0.
            r = min(r, np.nextafter(1.0, 0.0))
            index = ctps.search(r, cost)
        if not detector.check_and_mark(index, cost):
            return BipartiteOutcome(index=index, iterations=attempt + 1, remaps=remaps)
        if cost is not None:
            cost.selection_collisions += 1

    # Pathological skew: fall back to a single updated-CTPS draw over the
    # still-unselected candidates (exact, one prefix-sum rebuild).
    marked = np.array(
        [detector.is_marked(i) for i in range(ctps.num_candidates)], dtype=bool
    )
    if np.all(marked | (ctps.probabilities() <= 0.0)):
        raise RuntimeError("every candidate with positive probability is already selected")
    updated = ctps.exclude(np.nonzero(marked)[0], cost)
    r = float(rng.uniform(*(list(coords) + [2 * max_attempts])))
    if cost is not None:
        cost.rng_draws += 1
        cost.selection_attempts += 1
    index = updated.search(r, cost)
    detector.check_and_mark(index, cost)
    return BipartiteOutcome(index=index, iterations=max_attempts + 1, remaps=remaps)
