"""Sampling without replacement: collision-mitigation strategies.

Traversal-based sampling picks ``NeighborSize`` *distinct* neighbors from a
pool (Section II-A: "sampling without replacement"), so concurrent lanes of
the selection warp can collide on the same candidate.  The paper evaluates
three ways of handling that (Fig. 6):

``REPEATED``
    Keep the CTPS fixed and redraw the random number until an unselected
    candidate is hit.  Cheap per attempt but the expected number of attempts
    explodes on skewed transition probabilities or large ``NeighborSize``.
``UPDATED``
    Rebuild the CTPS without the already-selected candidates before every
    selection.  Always succeeds in one draw but pays a full Kogge-Stone
    prefix sum (plus normalisation) per selection.
``BIPARTITE``
    Bipartite region search (Theorem 2): keep the CTPS fixed and remap the
    random number around the selected region, giving updated-sampling
    selection quality at repeated-sampling cost.

Each strategy composes with any collision detector from
:mod:`repro.selection.bitmap` (linear-search baseline, contiguous bitmap or
strided bitmap); the returned :class:`SelectionResult` carries the iteration
and probe statistics Figures 10-12 are built from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG
from repro.selection.bipartite import bipartite_search_select
from repro.selection.bitmap import CollisionDetector, make_detector
from repro.selection.ctps import CTPS

__all__ = ["CollisionStrategy", "SelectionResult", "select_without_replacement"]

_MAX_ATTEMPTS = 10_000


class CollisionStrategy(str, enum.Enum):
    """How SELECT mitigates collisions between concurrent lane selections."""

    REPEATED = "repeated"
    UPDATED = "updated"
    BIPARTITE = "bipartite"

    @classmethod
    def coerce(cls, value: Union[str, "CollisionStrategy"]) -> "CollisionStrategy":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        return cls(str(value).lower())


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of selecting ``k`` distinct candidates from one pool."""

    #: Positions of the selected candidates inside the pool, in selection order.
    indices: np.ndarray
    #: Do-while trip count of each selection (Fig. 11's metric).
    iterations: np.ndarray
    #: Total collision-detection probes performed (Fig. 12's metric).
    probes: int
    #: Number of attempts that hit an already-selected candidate.
    collisions: int

    @property
    def total_iterations(self) -> int:
        """Sum of do-while iterations across all selections."""
        return int(self.iterations.sum())

    @property
    def mean_iterations(self) -> float:
        """Average do-while iterations per selection."""
        return float(self.iterations.mean()) if self.iterations.size else 0.0


def _positive_bias_count(biases: np.ndarray) -> int:
    return int(np.count_nonzero(np.asarray(biases, dtype=np.float64) > 0))


def select_without_replacement(
    biases: np.ndarray,
    count: int,
    rng: CounterRNG,
    *coords: int,
    strategy: Union[str, CollisionStrategy] = CollisionStrategy.BIPARTITE,
    detector: Union[str, CollisionDetector] = "strided_bitmap",
    cost: Optional[CostModel] = None,
) -> SelectionResult:
    """Select ``count`` distinct candidates with probability proportional to bias.

    Parameters
    ----------
    biases:
        Non-negative candidate biases (the pool).
    count:
        Number of distinct candidates to select; must not exceed the number
        of candidates with positive bias.
    rng, coords:
        Counter-based RNG and stream coordinates identifying this SELECT
        invocation (e.g. ``(instance, depth, frontier_slot)``); lane and
        attempt indices are appended internally.
    strategy:
        Collision-mitigation strategy (:class:`CollisionStrategy` or string).
    detector:
        Collision detector instance or factory name
        (``"linear" | "bitmap" | "strided_bitmap"``).
    cost:
        Cost model charged with all simulated-GPU work.
    """
    biases = np.asarray(biases, dtype=np.float64)
    strategy = CollisionStrategy.coerce(strategy)
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return SelectionResult(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0, 0)
    positive = _positive_bias_count(biases)
    if count > positive:
        raise ValueError(
            f"cannot select {count} distinct candidates: only {positive} have positive bias"
        )
    if isinstance(detector, str):
        detector = make_detector(detector, biases.size)

    ctps = CTPS.from_biases(biases, cost)
    indices = np.empty(count, dtype=np.int64)
    iterations = np.empty(count, dtype=np.int64)
    probes_before = cost.collision_probes if cost is not None else 0
    collisions = 0

    if strategy is CollisionStrategy.BIPARTITE:
        for lane in range(count):
            outcome = bipartite_search_select(
                ctps, detector, rng, *(list(coords) + [lane]), cost=cost
            )
            indices[lane] = outcome.index
            iterations[lane] = outcome.iterations
            collisions += outcome.remaps + (outcome.iterations - 1)

    elif strategy is CollisionStrategy.REPEATED:
        for lane in range(count):
            for attempt in range(_MAX_ATTEMPTS):
                r = float(rng.uniform(*(list(coords) + [lane, attempt])))
                if cost is not None:
                    cost.rng_draws += 1
                    cost.selection_attempts += 1
                candidate = ctps.search(r, cost)
                duplicate = detector.check_and_mark(candidate, cost)
                if not duplicate:
                    indices[lane] = candidate
                    iterations[lane] = attempt + 1
                    break
                collisions += 1
                if cost is not None:
                    cost.selection_collisions += 1
            else:
                # Extremely skewed transition probabilities can make repeated
                # sampling fail to hit a tiny unselected region within the
                # attempt budget (this is exactly the pathology the paper's
                # bipartite region search removes).  Fall back to the first
                # unselected positive-bias candidate, keeping the attempt
                # count so the statistics reflect the wasted work.
                probabilities = ctps.probabilities()
                for candidate in range(probabilities.size):
                    if probabilities[candidate] > 0 and not detector.is_marked(candidate):
                        detector.check_and_mark(candidate, cost)
                        indices[lane] = candidate
                        break
                iterations[lane] = _MAX_ATTEMPTS

    else:  # CollisionStrategy.UPDATED
        selected: list[int] = []
        current = ctps
        for lane in range(count):
            if lane > 0:
                # Rebuild the CTPS without the already-selected candidates;
                # this is the expensive step the strategy is defined by.
                current = ctps.exclude(np.asarray(selected, dtype=np.int64), cost)
            r = float(rng.uniform(*(list(coords) + [lane, 0])))
            if cost is not None:
                cost.rng_draws += 1
                cost.selection_attempts += 1
            candidate = current.search(r, cost)
            # The rebuilt CTPS gives zero-width regions to selected vertices,
            # so the candidate is always fresh; the detector still records it
            # for parity with the other strategies.
            detector.check_and_mark(candidate, cost)
            selected.append(candidate)
            indices[lane] = candidate
            iterations[lane] = 1

    probes = (cost.collision_probes - probes_before) if cost is not None else 0
    if cost is not None:
        cost.sampled_edges += 0  # sampled-edge accounting happens in the sampler
    return SelectionResult(
        indices=indices,
        iterations=iterations,
        probes=int(probes),
        collisions=int(collisions),
    )
