"""Cumulative Transition Probability Space (CTPS).

Given biases ``b_1 .. b_n``, the paper builds the prefix-sum array
``S_m = sum_{i<m} b_i`` (``S_1 = 0``, ``S_{n+1} = sum b_i``) and normalises it
by the total to obtain ``F`` -- the CTPS.  The transition probability of
candidate ``k`` equals the width of its region ``F_{k+1} - F_k`` (Equation 1),
so drawing a uniform random number and binary-searching it in ``F`` selects
candidates exactly with their transition probabilities (inverse transform
sampling).

This module holds the CTPS data structure used by every selection strategy.
Construction charges a Kogge-Stone scan to the cost model; every search
charges ``ceil(log2(n+1))`` binary-search steps, matching the per-operation
costs of the GPU kernel in Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.gpusim.costmodel import CostModel
from repro.gpusim.scan import warp_prefix_sum

__all__ = ["CTPS"]


@dataclass(frozen=True)
class CTPS:
    """Normalised cumulative transition probability space over ``n`` candidates.

    Attributes
    ----------
    boundaries:
        Array ``F`` of length ``n + 1`` with ``F[0] = 0`` and ``F[n] = 1``;
        candidate ``k`` owns the half-open region ``[F[k], F[k+1])``.
    total_bias:
        The un-normalised sum of biases (``S_{n+1}``), needed by callers that
        must renormalise after excluding candidates.
    """

    boundaries: np.ndarray
    total_bias: float

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_biases(cls, biases: np.ndarray, cost: Optional[CostModel] = None) -> "CTPS":
        """Build the CTPS of the given non-negative biases.

        Raises
        ------
        ValueError
            If any bias is negative, non-finite, or all biases are zero.
        """
        biases = np.asarray(biases, dtype=np.float64)
        if biases.ndim != 1 or biases.size == 0:
            raise ValueError("biases must be a non-empty 1-D array")
        if np.any(biases < 0):
            raise ValueError("biases must be non-negative")
        if not np.all(np.isfinite(biases)):
            raise ValueError("biases must be finite")
        prefix = warp_prefix_sum(biases, cost)
        total = float(prefix[-1])
        if total <= 0.0:
            raise ValueError("at least one bias must be positive")
        boundaries = prefix / total
        # Guard against round-off: the tree-order prefix sums can land a
        # boundary a few ulps above the (differently-associated) total, e.g.
        # with trailing zero biases, and regions must satisfy l < h <= 1.
        # Values above 1 compare identically to 1.0 against any r in [0, 1),
        # so clamping never changes a search result.
        np.minimum(boundaries, 1.0, out=boundaries)
        boundaries[-1] = 1.0
        if cost is not None:
            # Normalisation: one division per element.  The CTPS itself stays
            # in the warp's shared/register storage for typical pool sizes, so
            # no additional global-memory traffic is charged beyond the bias
            # reads already accounted by the scan.
            cost.charge_warp_step(1, active_lanes=min(biases.size, 32))
        return cls(boundaries=boundaries, total_bias=total)

    # ------------------------------------------------------------------ #
    @property
    def num_candidates(self) -> int:
        """Number of candidates in the space."""
        return int(self.boundaries.size - 1)

    def probability(self, index: int) -> float:
        """Transition probability of candidate ``index`` (region width)."""
        self._check_index(index)
        return float(self.boundaries[index + 1] - self.boundaries[index])

    def probabilities(self) -> np.ndarray:
        """All transition probabilities (sums to 1)."""
        return np.diff(self.boundaries)

    def region(self, index: int) -> Tuple[float, float]:
        """The ``(l, h)`` CTPS region of candidate ``index``."""
        self._check_index(index)
        return float(self.boundaries[index]), float(self.boundaries[index + 1])

    # ------------------------------------------------------------------ #
    # Searching
    # ------------------------------------------------------------------ #
    def search(self, r: float, cost: Optional[CostModel] = None) -> int:
        """Binary-search a random number ``r in [0, 1)`` to a candidate index."""
        if not (0.0 <= r < 1.0):
            raise ValueError("random number must lie in [0, 1)")
        index = int(np.searchsorted(self.boundaries, r, side="right") - 1)
        # Zero-width regions (zero bias) can never be hit because searchsorted
        # with side="right" skips boundaries equal to r only when widths are 0;
        # step forward past any zero-width region we may have landed on.
        while index < self.num_candidates - 1 and self.boundaries[index + 1] <= r:
            index += 1
        if cost is not None:
            steps = self._search_steps()
            cost.binary_search_steps += steps
            # Each binary-search probe reads one CTPS boundary from memory.
            cost.charge_global_bytes(steps * 8)
        return index

    def search_many(self, rs: np.ndarray, cost: Optional[CostModel] = None) -> np.ndarray:
        """Vectorised :meth:`search` over an array of random numbers."""
        rs = np.asarray(rs, dtype=np.float64)
        if rs.size and (rs.min() < 0.0 or rs.max() >= 1.0):
            raise ValueError("random numbers must lie in [0, 1)")
        indices = np.searchsorted(self.boundaries, rs, side="right") - 1
        indices = np.clip(indices, 0, self.num_candidates - 1)
        if cost is not None:
            steps = self._search_steps()
            cost.binary_search_steps += steps * int(rs.size)
            cost.charge_global_bytes(steps * 8 * int(rs.size))
        return indices.astype(np.int64)

    def exclude(self, selected: np.ndarray, cost: Optional[CostModel] = None) -> "CTPS":
        """Rebuild the CTPS with the given candidate indices excluded.

        This is the paper's "updated sampling" strawman (Fig. 6(b)): it pays a
        full prefix-sum recomputation.  Excluded candidates keep an entry with
        zero-width region so indices remain aligned with the original pool.
        """
        selected = np.asarray(selected, dtype=np.int64)
        # Kogge-Stone partial sums are not exactly monotone (each prefix uses
        # a different addition order), so region widths can round to a few
        # negative ulps; clamp them so the rebuilt biases stay valid.
        biases = np.maximum(np.diff(self.boundaries), 0.0) * self.total_bias
        if selected.size:
            biases = biases.copy()
            biases[selected] = 0.0
        return CTPS.from_biases(biases, cost)

    # ------------------------------------------------------------------ #
    def _search_steps(self) -> int:
        return max(1, int(np.ceil(np.log2(self.boundaries.size))))

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.num_candidates):
            raise IndexError(f"candidate index {index} out of range")
