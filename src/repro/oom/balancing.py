"""Thread-block based workload balancing (Section V-B).

When several kernels sample different partitions concurrently, the straggler
determines the round's makespan.  C-SAW balances the kernels implicitly by
granting each one a number of thread blocks proportional to the workload
(active frontier vertices) of its partition; the example in Fig. 8 gives the
2-active-vertex partition twice the blocks of the 1-active-vertex partition.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["block_fractions"]


def block_fractions(workloads: Sequence[int], *, balanced: bool, floor: float = 0.05) -> np.ndarray:
    """Per-kernel thread-block fractions for one scheduling round.

    Parameters
    ----------
    workloads:
        Active-vertex count of each concurrently scheduled partition.
    balanced:
        When False every kernel receives an equal share (the baseline); when
        True shares are proportional to workload.
    floor:
        Minimum fraction granted to any kernel so a nearly idle kernel still
        makes progress (real kernels cannot launch with zero blocks).

    Returns
    -------
    Array of fractions summing to 1.0 (one entry per workload).
    """
    workloads = np.asarray(list(workloads), dtype=np.float64)
    if workloads.ndim != 1 or workloads.size == 0:
        raise ValueError("workloads must be a non-empty 1-D sequence")
    if np.any(workloads < 0):
        raise ValueError("workloads must be non-negative")
    n = workloads.size
    if not balanced or workloads.sum() == 0:
        return np.full(n, 1.0 / n)
    fractions = workloads / workloads.sum()
    fractions = np.maximum(fractions, floor)
    return fractions / fractions.sum()
