"""Batched multi-instance sampling helpers (Section V-C).

Without batching, each sampling instance's active vertices are processed by
their own kernel launch (instance-grained work distribution): many tiny,
unevenly sized kernels that under-fill the GPU and straggle.  With batching,
all instances' entries in a partition's frontier queue are combined into a
single kernel (vertex-grained distribution): one big launch whose warps pick
whichever entry comes next, regardless of the owning instance.

The helpers here split a drained frontier queue into the per-kernel work
groups corresponding to those two modes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["group_entries_by_instance", "single_batch"]

EntryArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]


def group_entries_by_instance(
    vertices: np.ndarray, instances: np.ndarray, depths: np.ndarray
) -> List[EntryArrays]:
    """Split queue entries into one group per instance (non-batched mode).

    Groups are returned in ascending instance-id order, mirroring the
    instance-grained scheduling the paper's baseline uses.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    instances = np.asarray(instances, dtype=np.int64)
    depths = np.asarray(depths, dtype=np.int64)
    if not (vertices.shape == instances.shape == depths.shape):
        raise ValueError("entry arrays must have identical shapes")
    groups: List[EntryArrays] = []
    for instance_id in np.unique(instances):
        mask = instances == instance_id
        groups.append((vertices[mask], instances[mask], depths[mask]))
    return groups


def single_batch(
    vertices: np.ndarray, instances: np.ndarray, depths: np.ndarray
) -> List[EntryArrays]:
    """Return the entries as one combined group (batched mode)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    instances = np.asarray(instances, dtype=np.int64)
    depths = np.asarray(depths, dtype=np.int64)
    if not (vertices.shape == instances.shape == depths.shape):
        raise ValueError("entry arrays must have identical shapes")
    if vertices.size == 0:
        return []
    return [(vertices, instances, depths)]
