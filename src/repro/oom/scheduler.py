"""Workload-aware partition scheduling and the out-of-memory sampler driver.

The :class:`OutOfMemorySampler` implements Section V of the paper:

1. the graph is partitioned into contiguous vertex ranges, each with the
   complete neighbor lists of its vertices;
2. every partition owns a frontier queue of ``(VertexID, InstanceID,
   CurrDepth)`` entries; seeds are enqueued into the partition that owns them;
3. in every scheduling round, up to ``num_kernels`` partitions are selected,
   transferred to the device if not already resident (overlapping the
   transfer with other streams' kernels) and sampled until their queues are
   empty; newly sampled vertices are pushed into the queue of the partition
   that owns them -- possibly a different one, to be processed when that
   partition is scheduled;
4. the run finishes when every queue is empty.

The three optimisations of Figures 13-15 are independent switches:

* **batched multi-instance sampling (BA)** -- process all instances' entries
  of a partition in one kernel instead of one kernel per instance;
* **workload-aware scheduling (WS)** -- schedule the partitions with the most
  active vertices first instead of in index order;
* **thread-block workload balancing (BAL)** -- give concurrently running
  kernels thread-block shares proportional to their workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.bias import SamplingProgram
from repro.api.config import SamplingConfig
from repro.api.frontier import FrontierQueue
from repro.api.instance import InstanceState, make_instances
from repro.api.results import SampleResult
from repro.api.select import gather_neighbors, warp_select
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device, make_device
from repro.gpusim.prng import CounterRNG
from repro.gpusim.warp import WarpExecutor
from repro.graph.csr import CSRGraph
from repro.graph.partition import PartitionSet, partition_graph
from repro.telemetry import profiler as _profiler

__all__ = ["OutOfMemoryConfig", "OutOfMemoryResult", "OutOfMemorySampler"]


@dataclass(frozen=True)
class OutOfMemoryConfig:
    """Switches of the out-of-memory engine (Figures 13-15 configurations)."""

    num_partitions: int = 4
    max_resident_partitions: int = 2
    num_kernels: int = 2
    batched: bool = False
    workload_aware: bool = False
    balanced_blocks: bool = False

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.max_resident_partitions < 1:
            raise ValueError("max_resident_partitions must be >= 1")
        if self.num_kernels < 1:
            raise ValueError("num_kernels must be >= 1")

    @staticmethod
    def baseline(**overrides) -> "OutOfMemoryConfig":
        """The unoptimised configuration of Fig. 13."""
        return OutOfMemoryConfig(**overrides)

    @staticmethod
    def batched_only(**overrides) -> "OutOfMemoryConfig":
        """Batched multi-instance sampling only (BA)."""
        return OutOfMemoryConfig(batched=True, **overrides)

    @staticmethod
    def batched_scheduled(**overrides) -> "OutOfMemoryConfig":
        """Batching plus workload-aware scheduling (BA + WS)."""
        return OutOfMemoryConfig(batched=True, workload_aware=True, **overrides)

    @staticmethod
    def fully_optimized(**overrides) -> "OutOfMemoryConfig":
        """All optimisations on (BA + WS + BAL)."""
        return OutOfMemoryConfig(
            batched=True, workload_aware=True, balanced_blocks=True, **overrides
        )


@dataclass
class OutOfMemoryResult:
    """Outcome of an out-of-memory sampling run."""

    sample: SampleResult
    makespan: float
    kernel_times: List[float]
    transfer_times: List[float]
    partition_transfers: int
    rounds: int
    cost: CostModel
    config: OutOfMemoryConfig
    #: Total busy time of each concurrent stream (kernel + transfer work);
    #: their spread is the workload-imbalance signal of Fig. 14.
    stream_busy_times: List[float] = field(default_factory=list)

    @property
    def total_sampled_edges(self) -> int:
        """Total sampled edges across instances."""
        return self.sample.total_sampled_edges

    def seps(self) -> float:
        """Sampled edges per simulated second of makespan (transfers included).

        The paper's out-of-memory SEPS includes partition transfer time, so
        the makespan (which overlaps transfers and kernels across streams) is
        the right denominator.
        """
        if self.makespan <= 0:
            return 0.0
        return self.total_sampled_edges / self.makespan

    def kernel_time_std(self) -> float:
        """Coefficient of variation of individual kernel durations."""
        times = np.asarray(self.kernel_times, dtype=np.float64)
        if times.size == 0 or times.mean() == 0:
            return 0.0
        return float(times.std() / times.mean())

    def stream_imbalance(self) -> float:
        """Relative imbalance of the concurrent kernels' total runtimes.

        This is the Fig. 14 metric: the straggler stream determines the
        makespan, so the normalised spread of per-stream busy time measures
        how well batching and thread-block balancing even out the work.
        """
        times = np.asarray(self.stream_busy_times, dtype=np.float64)
        if times.size == 0 or times.mean() == 0:
            return 0.0
        return float(times.std() / times.mean())


class OutOfMemorySampler:
    """Partition-scheduled sampler for graphs exceeding device memory."""

    def __init__(
        self,
        graph: CSRGraph,
        program: SamplingProgram,
        config: SamplingConfig,
        oom_config: Optional[OutOfMemoryConfig] = None,
        *,
        device: Optional[Device] = None,
        partitions: Optional[PartitionSet] = None,
        use_engine: bool = True,
        use_compiled: Optional[bool] = None,
        algorithm: Optional[str] = None,
    ):
        from repro.compiled.step_engine import make_step_engine
        from repro.graph.delta import as_csr

        graph = as_csr(graph)  # DeltaGraphs sample their canonical snapshot
        self.graph = graph
        self.program = program
        self.config = config
        # Advisory label only (plan attribution / profiler keys).
        self.algorithm = algorithm
        self.oom = oom_config or OutOfMemoryConfig()
        self.device = device if device is not None else make_device("gpu")
        self.partitions = (
            partitions
            if partitions is not None
            else partition_graph(graph, self.oom.num_partitions)
        )
        self.rng = CounterRNG(config.seed)
        self.use_engine = use_engine
        # The compiled tier specialises the engine's expand/step path, so it
        # is only meaningful when the engine path is active.
        self.use_compiled = use_compiled if use_engine else False
        self.engine = make_step_engine(
            graph, program, config, self.rng, use_compiled=self.use_compiled
        )
        self._warp_counter = 0

    # ------------------------------------------------------------------ #
    def plan(
        self,
        seeds: Union[Sequence[int], np.ndarray],
        *,
        num_instances: Optional[int] = None,
    ):
        """The :class:`ExecutionPlan` a :meth:`run` with these seeds executes.

        Also performs the uniform plan-time seed validation.
        """
        return self._plan(make_instances(
            list(np.asarray(seeds).reshape(-1)), num_instances=num_instances
        ))

    def _plan(self, instances):
        from repro.planner.planner import PlanRequest, plan

        return plan(PlanRequest(
            graph=self.graph,
            program=self.program,
            config=self.config,
            algorithm=self.algorithm,
            instances=instances,
            oom_config=self.oom,
            force_route="out_of_memory",
            allow_compiled=self.use_compiled,
        ))

    def run(
        self,
        seeds: Union[Sequence[int], np.ndarray],
        *,
        num_instances: Optional[int] = None,
    ) -> OutOfMemoryResult:
        """Sample all instances, scheduling partitions through device memory."""
        from repro.planner.executor import Executor

        instances = make_instances(list(np.asarray(seeds).reshape(-1)),
                                   num_instances=num_instances)
        executor = Executor(
            self._plan(instances),
            self.graph,
            program=self.program,
            engine=self.engine,
            device=self.device,
            use_engine=self.use_engine,
            partitions=self.partitions,
            scalar_expand=self._expand_entry,
        )
        return executor.execute(instances)

    def _expand_entry(
        self,
        vertex: int,
        instance: InstanceState,
        depth: int,
        queues: Dict[int, FrontierQueue],
        cost: CostModel,
        iteration_counts: List[int],
    ) -> None:
        """Sample the neighbors of one frontier entry and enqueue its successors."""
        cfg = self.config
        if depth >= cfg.depth:
            return
        prof = _profiler.clock(depth)
        edges = gather_neighbors(self.graph, vertex, instance, cost)
        prof.lap("gather")
        if edges.size == 0:
            return
        biases = np.asarray(self.program.edge_bias(edges), dtype=np.float64).reshape(-1)
        if biases.size != edges.size:
            raise ValueError("edge_bias must return one bias per neighbor")
        positive = int(np.count_nonzero(biases > 0))
        prof.lap("bias")
        if positive == 0:
            return
        requested = self.program.neighbor_count(edges, cfg.neighbor_size)
        if requested <= 0:
            return
        count = requested if cfg.with_replacement else min(requested, positive)
        warp = WarpExecutor(warp_id=self._warp_counter, cost=cost, rng=self.rng)
        self._warp_counter += 1
        result = warp_select(
            biases,
            count,
            warp,
            instance.instance_id,
            depth,
            vertex,
            with_replacement=cfg.with_replacement,
            strategy=cfg.strategy,
            detector=cfg.detector,
        )
        prof.lap("select")
        iteration_counts.extend(int(i) for i in result.iterations)
        sampled = edges.neighbors[result.indices]
        accepted = np.asarray(self.program.accept(edges, sampled), dtype=np.int64).reshape(-1)
        if accepted.size:
            instance.record_edges(vertex, accepted)
            cost.sampled_edges += int(accepted.size)
        new_vertices = np.asarray(
            self.program.update(edges, accepted), dtype=np.int64
        ).reshape(-1)
        if accepted.size and cfg.track_visited:
            instance.mark_visited(accepted)
        instance.prev_vertex = vertex
        next_depth = depth + 1
        if next_depth >= cfg.depth:
            return
        owners = self.partitions.owner(new_vertices) if new_vertices.size else ()
        for new_vertex, owner in zip(new_vertices, owners):
            queues[int(owner)].push(int(new_vertex), instance.instance_id, next_depth)
        prof.lap("update")
