"""Out-of-memory and multi-GPU sampling (Section V of the paper).

When the graph exceeds the simulated device memory, C-SAW partitions it into
contiguous vertex ranges and schedules partitions through the GPU:

* :mod:`~repro.oom.transfer` -- partition residency management (which
  partitions are on the device, LRU eviction, PCIe transfer accounting).
* :mod:`~repro.oom.batching` -- batched multi-instance sampling: entries of
  many instances share one frontier queue per partition and are processed by
  one kernel (vertex-grained work distribution) instead of one kernel per
  instance.
* :mod:`~repro.oom.balancing` -- thread-block based workload balancing:
  kernels processing busier partitions receive proportionally more thread
  blocks.
* :mod:`~repro.oom.scheduler` -- the workload-aware partition scheduler and
  the :class:`OutOfMemorySampler` driver that ties everything together.
* :mod:`~repro.oom.multigpu` -- dividing sampling instances across multiple
  simulated GPUs (no inter-GPU communication needed).
"""

from repro.oom.transfer import PartitionResidency
from repro.oom.batching import group_entries_by_instance
from repro.oom.balancing import block_fractions
from repro.oom.scheduler import (
    OutOfMemoryConfig,
    OutOfMemoryResult,
    OutOfMemorySampler,
)
from repro.oom.multigpu import MultiGPUResult, run_multi_gpu_sampling, run_multi_gpu_walks

__all__ = [
    "PartitionResidency",
    "group_entries_by_instance",
    "block_fractions",
    "OutOfMemoryConfig",
    "OutOfMemoryResult",
    "OutOfMemorySampler",
    "MultiGPUResult",
    "run_multi_gpu_sampling",
    "run_multi_gpu_walks",
]
