"""Multi-GPU sampling (Section V-D).

Sampling instances are independent, so C-SAW scales to multiple GPUs by
splitting the instances into as many equal groups as there are GPUs and
running each group on its own device; no inter-GPU communication is needed.
The total time is the slowest GPU's time, which is why scaling depends on
having enough instances to keep every device busy (Fig. 17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.api.bias import SamplingProgram
from repro.api.config import SamplingConfig
from repro.api.results import SampleResult
from repro.api.sampler import GraphSampler
from repro.algorithms.random_walk import run_random_walks
from repro.gpusim.device import Device, DeviceSpec, V100_SPEC, make_device
from repro.graph.csr import CSRGraph

__all__ = ["MultiGPUResult", "run_multi_gpu_sampling", "run_multi_gpu_walks"]


@dataclass
class MultiGPUResult:
    """Per-GPU results plus aggregate throughput.

    With fewer instances than GPUs the surplus devices receive no work and
    are skipped entirely: ``per_gpu`` / ``devices`` hold only the devices
    that ran (their ``device_id`` keeps the original GPU index, so
    heterogeneous ``device_specs`` stay aligned), and ``requested_gpus``
    records how many were asked for.
    """

    per_gpu: List[SampleResult]
    devices: List[Device]
    #: GPUs the job requested (>= ``num_gpus`` when groups were empty).
    requested_gpus: int = 0

    def __post_init__(self) -> None:
        if self.requested_gpus < len(self.per_gpu):
            self.requested_gpus = len(self.per_gpu)

    @property
    def num_gpus(self) -> int:
        """Number of simulated GPUs that actually ran instances."""
        return len(self.per_gpu)

    def instances_per_gpu(self) -> List[int]:
        """Instance count of each GPU that ran, aligned with ``devices``."""
        return [r.num_instances for r in self.per_gpu]

    @property
    def total_sampled_edges(self) -> int:
        """Total sampled edges across all GPUs."""
        return int(sum(r.total_sampled_edges for r in self.per_gpu))

    def makespan(self, spec: Optional[DeviceSpec] = None) -> float:
        """Completion time: the slowest GPU's kernel time."""
        spec = spec or V100_SPEC
        return max((r.kernel_time(spec) for r in self.per_gpu), default=0.0)

    def seps(self, spec: Optional[DeviceSpec] = None) -> float:
        """Aggregate sampled edges per second across the GPUs."""
        time = self.makespan(spec)
        return self.total_sampled_edges / time if time > 0 else 0.0

    def speedup_over(self, single_gpu: "MultiGPUResult", spec: Optional[DeviceSpec] = None) -> float:
        """Speedup of this run relative to a single-GPU run of the same job."""
        ours = self.makespan(spec)
        theirs = single_gpu.makespan(spec)
        return theirs / ours if ours > 0 else 0.0


def _split_seeds(seeds: np.ndarray, num_instances: int, num_gpus: int) -> List[np.ndarray]:
    """Round-robin expand seeds to ``num_instances`` then split into GPU groups.

    Returns exactly ``num_gpus`` groups; with ``num_instances < num_gpus``
    the trailing groups are empty and the callers skip those devices.
    """
    seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
    if seeds.size == 0:
        raise ValueError("at least one seed is required")
    reps = int(np.ceil(num_instances / seeds.size))
    expanded = np.tile(seeds, reps)[:num_instances]
    return list(np.array_split(expanded, num_gpus))


def run_multi_gpu_sampling(
    graph: CSRGraph,
    program: SamplingProgram,
    config: SamplingConfig,
    seeds: Union[Sequence[int], np.ndarray],
    *,
    num_instances: int,
    num_gpus: int,
    device_specs: Optional[Sequence[DeviceSpec]] = None,
) -> MultiGPUResult:
    """Run a traversal-sampling job divided across ``num_gpus`` simulated GPUs."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if num_instances < 1:
        raise ValueError("num_instances must be >= 1")
    if device_specs is not None and len(device_specs) < num_gpus:
        raise ValueError("device_specs must cover every requested GPU")
    groups = _split_seeds(np.asarray(seeds), num_instances, num_gpus)
    results: List[SampleResult] = []
    devices: List[Device] = []
    for gpu_index, group in enumerate(groups):
        if group.size == 0:  # more GPUs than instances: skip the idle device
            continue
        spec = device_specs[gpu_index] if device_specs else None
        device = Device(spec, device_id=gpu_index) if spec else make_device("gpu", device_id=gpu_index)
        sampler = GraphSampler(graph, program, config.replace(seed=config.seed + gpu_index), device)
        results.append(sampler.run(group.tolist()))
        devices.append(device)
    return MultiGPUResult(per_gpu=results, devices=devices, requested_gpus=num_gpus)


def run_multi_gpu_walks(
    graph: CSRGraph,
    seeds: Union[Sequence[int], np.ndarray],
    *,
    num_walkers: int,
    walk_length: int,
    num_gpus: int,
    biased: bool = False,
    seed: int = 0,
) -> MultiGPUResult:
    """Run a random-walk job divided across ``num_gpus`` simulated GPUs."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    groups = _split_seeds(np.asarray(seeds), num_walkers, num_gpus)
    results: List[SampleResult] = []
    devices: List[Device] = []
    for gpu_index, group in enumerate(groups):
        if group.size == 0:  # more GPUs than walkers: skip the idle device
            continue
        device = make_device("gpu", device_id=gpu_index)
        results.append(
            run_random_walks(
                graph,
                group,
                walk_length=walk_length,
                biased=biased,
                seed=seed + gpu_index,
                device=device,
            )
        )
        devices.append(device)
    return MultiGPUResult(per_gpu=results, devices=devices, requested_gpus=num_gpus)
