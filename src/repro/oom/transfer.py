"""Partition residency management and PCIe transfer accounting.

The simulated GPU can hold a bounded number of graph partitions at once.
:class:`PartitionResidency` tracks which partitions are resident, evicts the
least-recently-used ones when space is needed, and charges every host-to-
device partition copy to the device cost model through the
:class:`~repro.gpusim.memory.TransferEngine`.  The number of transfers it
performs is exactly the metric of the paper's Fig. 15.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.gpusim.costmodel import CostModel
from repro.gpusim.memory import TransferEngine
from repro.graph.partition import PartitionSet

__all__ = ["PartitionResidency"]


class PartitionResidency:
    """LRU-managed set of graph partitions resident on the simulated device."""

    def __init__(
        self,
        partitions: PartitionSet,
        max_resident: int,
        transfer_engine: TransferEngine,
    ):
        if max_resident < 1:
            raise ValueError("the device must be able to hold at least one partition")
        self.partitions = partitions
        self.max_resident = min(max_resident, len(partitions))
        self.transfer_engine = transfer_engine
        self.transfer_count = 0
        #: Resident partition indices in least-recently-used-first order.
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    # ------------------------------------------------------------------ #
    @property
    def resident_partitions(self) -> list[int]:
        """Resident partition indices, least recently used first."""
        return list(self._resident)

    def is_resident(self, partition_index: int) -> bool:
        """Whether a partition is currently on the device."""
        return partition_index in self._resident

    def touch(self, partition_index: int) -> None:
        """Mark a resident partition as most recently used."""
        if partition_index in self._resident:
            self._resident.move_to_end(partition_index)

    # ------------------------------------------------------------------ #
    def ensure_resident(
        self,
        partition_index: int,
        cost: Optional[CostModel] = None,
        *,
        protect: Optional[set[int]] = None,
    ) -> float:
        """Make a partition resident, returning the transfer duration (0 if cached).

        ``protect`` lists partition indices that must not be evicted (they are
        being actively sampled by other kernels in the same round).
        """
        if not (0 <= partition_index < len(self.partitions)):
            raise IndexError(f"partition {partition_index} out of range")
        if partition_index in self._resident:
            self.touch(partition_index)
            return 0.0
        protect = protect or set()
        while len(self._resident) >= self.max_resident:
            victim = self._pick_victim(protect)
            if victim is None:
                raise RuntimeError(
                    "cannot evict any partition: all resident partitions are protected"
                )
            del self._resident[victim]
        duration = self.transfer_engine.host_to_device(
            self.partitions[partition_index].nbytes, cost
        )
        self._resident[partition_index] = None
        self.transfer_count += 1
        return duration

    def release(self, partition_index: int) -> None:
        """Drop a partition from the device (its frontier queue went empty)."""
        self._resident.pop(partition_index, None)

    def _pick_victim(self, protect: set[int]) -> Optional[int]:
        for candidate in self._resident:
            if candidate not in protect:
                return candidate
        return None

    def __repr__(self) -> str:
        return (
            f"PartitionResidency(resident={list(self._resident)}, "
            f"max={self.max_resident}, transfers={self.transfer_count})"
        )
