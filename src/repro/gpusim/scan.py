"""Kogge-Stone parallel prefix sums.

C-SAW computes the cumulative transition probability space (CTPS) with a
warp-level Kogge-Stone scan (Fig. 5, line 6), chosen because all 32 lanes of
a warp execute in lock-step.  The scan takes ``ceil(log2(n))`` steps, and the
paper's "updated sampling" strawman pays that cost again for every selection,
which is exactly why bipartite region search wins.

The implementations below are literal Kogge-Stone: at step ``d`` every lane
``i >= 2**d`` adds the value at ``i - 2**d``.  They are vectorised with NumPy
(one array operation per step) and charge ``log2`` steps to a cost model when
one is supplied, so the cost of CTPS construction and reconstruction is
accounted the same way the GPU would pay it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim.costmodel import CostModel

__all__ = ["kogge_stone_inclusive", "kogge_stone_exclusive", "warp_prefix_sum"]


def _num_steps(n: int) -> int:
    """Number of Kogge-Stone steps for an array of length ``n``."""
    if n <= 1:
        return 0
    return int(np.ceil(np.log2(n)))


def kogge_stone_inclusive(values: np.ndarray, cost: Optional[CostModel] = None) -> np.ndarray:
    """Inclusive prefix sum computed with the Kogge-Stone recurrence."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("expected a 1-D array")
    result = values.copy()
    n = result.size
    steps = _num_steps(n)
    offset = 1
    for _ in range(steps):
        shifted = np.zeros_like(result)
        shifted[offset:] = result[:-offset]
        result = result + shifted
        offset *= 2
    if cost is not None:
        # A warp covers 32 lanes per step; pools wider than a warp are
        # processed in ceil(n / 32) chunks per Kogge-Stone step.  The charged
        # quantity is therefore the warp-parallel *span*, not the O(n log n)
        # total work -- that is exactly the advantage warp-level scans have
        # over a serial CPU prefix sum.
        chunks = max(1, int(np.ceil(n / 32))) if n else 1
        cost.prefix_sum_steps += steps * chunks
        cost.charge_warp_step(steps, active_lanes=min(n, 32) if n else 1)
        cost.charge_global_bytes(n * 8)
    return result


def kogge_stone_exclusive(values: np.ndarray, cost: Optional[CostModel] = None) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``."""
    inclusive = kogge_stone_inclusive(values, cost)
    exclusive = np.empty_like(inclusive)
    exclusive[0] = 0.0
    exclusive[1:] = inclusive[:-1]
    return exclusive


def warp_prefix_sum(values: np.ndarray, cost: Optional[CostModel] = None) -> np.ndarray:
    """Prefix sum with a leading zero, i.e. the CTPS boundary array S.

    For biases ``b_1 .. b_n`` the paper's S array is
    ``S_m = sum_{i<m} b_i`` for ``1 <= m <= n+1`` -- a length ``n+1`` array
    starting at 0 and ending at the total.  This helper returns exactly that.
    """
    values = np.asarray(values, dtype=np.float64)
    inclusive = kogge_stone_inclusive(values, cost)
    out = np.empty(values.size + 1, dtype=np.float64)
    out[0] = 0.0
    out[1:] = inclusive
    return out
