"""Warp-centric execution abstraction.

C-SAW assigns one *warp* to each SELECT invocation (one frontier vertex's
neighbor pool), and one *lane* to each vertex selection inside it
(Section IV-A).  The paper chooses warps over thread blocks because real
graphs are mostly low degree and a block would sit idle (~2x slower in their
evaluation).

:class:`WarpExecutor` captures that model for the simulator: it charges
lock-step steps with the number of active lanes, tracks divergence (lanes
that finished their do-while loop earlier than others still pay the step, as
SIMT hardware does), and hands out per-lane random streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpusim.costmodel import CostModel
from repro.gpusim.prng import CounterRNG

__all__ = ["WARP_SIZE", "WarpExecutor"]

#: Number of lanes per warp, matching NVIDIA hardware.
WARP_SIZE = 32


@dataclass
class WarpExecutor:
    """Execution context for one warp-sized unit of work.

    Parameters
    ----------
    warp_id:
        Globally unique warp identifier (used to derive lane random streams).
    cost:
        Cost model all work performed by this warp is charged to.
    rng:
        Counter-based generator; lane draws are keyed by
        ``(warp_id, lane, attempt, tag)`` so replays are impossible.
    warp_size:
        Lane count; defaults to :data:`WARP_SIZE`.
    """

    warp_id: int
    cost: CostModel
    rng: CounterRNG
    warp_size: int = WARP_SIZE

    # ------------------------------------------------------------------ #
    def lanes(self, count: Optional[int] = None) -> np.ndarray:
        """Lane indices active for a task of ``count`` items (capped at warp size)."""
        n = self.warp_size if count is None else min(count, self.warp_size)
        return np.arange(n, dtype=np.int64)

    def charge_step(self, steps: int = 1, active_lanes: Optional[int] = None) -> None:
        """Charge lock-step instructions; inactive lanes still occupy the warp."""
        self.cost.charge_warp_step(steps, self.warp_size if active_lanes is None else active_lanes)

    def charge_divergent_loop(self, per_lane_iterations: np.ndarray) -> None:
        """Charge a divergent loop: the warp steps as long as its slowest lane.

        ``per_lane_iterations[i]`` is how many loop iterations lane ``i``
        executed.  Under SIMT the warp executes ``max(iterations)`` steps, and
        on each step only the still-running lanes are active.
        """
        per_lane_iterations = np.asarray(per_lane_iterations, dtype=np.int64)
        if per_lane_iterations.size == 0:
            return
        max_iters = int(per_lane_iterations.max())
        total_active = int(per_lane_iterations.sum())
        self.cost.warp_steps += max_iters
        self.cost.lane_ops += total_active

    def lane_uniform(self, lane_ids: np.ndarray, attempt: int, tag: int = 0) -> np.ndarray:
        """Uniform random numbers in [0, 1) for the given lanes."""
        draws = self.rng.uniform(np.int64(self.warp_id), np.asarray(lane_ids, dtype=np.int64),
                                 np.int64(attempt), np.int64(tag))
        self.cost.rng_draws += int(np.asarray(lane_ids).size)
        return draws

    def gather_global(self, nbytes: int) -> None:
        """Charge a gather of ``nbytes`` from device global memory."""
        self.cost.charge_global_bytes(nbytes)
