"""Operation counting and conversion to simulated execution time.

The paper's figures compare *relative* performance: which collision strategy
wins (Fig 10-12), how much out-of-memory scheduling saves (Fig 13-15), how
time grows with NeighborSize and instance count (Fig 16) and how C-SAW scales
across GPUs (Fig 17).  All of those are determined by how much work each
configuration performs -- selection iterations, prefix-sum recomputation,
collision probes, atomic conflicts, bytes moved over PCIe -- not by the
absolute speed of a V100.

:class:`CostModel` therefore accumulates exact operation counts while the
framework runs, and converts them into simulated seconds using a
:class:`~repro.gpusim.device.DeviceSpec`.  The conversion is a classic
roofline-style model: compute time and memory time overlap (take the max),
PCIe transfers and kernel-launch overheads are additive.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.device import DeviceSpec

__all__ = ["CostModel", "CostBreakdown"]


@dataclass
class CostBreakdown:
    """Simulated time split into its roofline components (seconds)."""

    compute_time: float
    memory_time: float
    transfer_time: float
    launch_time: float

    @property
    def total(self) -> float:
        """Total simulated time: overlapped compute/memory plus transfers."""
        return max(self.compute_time, self.memory_time) + self.transfer_time + self.launch_time


@dataclass
class CostModel:
    """Accumulator of simulated-hardware events.

    Counters
    --------
    warp_steps:
        Lock-step warp instructions (each step executes up to 32 lanes).
    lane_ops:
        Individual lane operations (used for divergence statistics).
    global_bytes:
        Device-memory traffic in bytes (CSR reads, CTPS reads/writes, queue
        updates).
    shared_accesses:
        Shared-memory accesses (the linear-search collision baseline).
    atomic_ops / atomic_conflicts:
        Atomic operations issued and the subset that contended for the same
        word in the same warp step (strided vs contiguous bitmaps differ here).
    rng_draws:
        Random numbers generated (one per selection attempt).
    binary_search_steps / prefix_sum_steps:
        Steps of the two dominant selection kernels.
    selection_attempts / selection_collisions:
        Do-while iterations of the SELECT loop and how many hit an
        already-selected vertex (Fig 11's metric).
    collision_probes:
        Collision-detection probes (bitmap or linear search; Fig 12's metric).
    h2d_bytes / d2h_bytes:
        PCIe traffic for out-of-memory sampling.
    kernel_launches:
        Number of kernels launched (fixed overhead each).
    sampled_edges:
        Edges emitted into the sample output (numerator of SEPS).
    """

    warp_steps: int = 0
    lane_ops: int = 0
    global_bytes: int = 0
    shared_accesses: int = 0
    atomic_ops: int = 0
    atomic_conflicts: int = 0
    rng_draws: int = 0
    binary_search_steps: int = 0
    prefix_sum_steps: int = 0
    selection_attempts: int = 0
    selection_collisions: int = 0
    collision_probes: int = 0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    kernel_launches: int = 0
    sampled_edges: int = 0
    partition_transfers: int = 0

    # ------------------------------------------------------------------ #
    # Mutation helpers
    # ------------------------------------------------------------------ #
    def charge_warp_step(self, steps: int = 1, active_lanes: int = 32) -> None:
        """Charge ``steps`` lock-step warp instructions with the given activity."""
        self.warp_steps += int(steps)
        self.lane_ops += int(steps) * int(active_lanes)

    def charge_global_bytes(self, nbytes: int) -> None:
        """Charge device-memory traffic."""
        self.global_bytes += int(nbytes)

    def charge_transfer(self, nbytes: int, *, direction: str = "h2d") -> None:
        """Charge a PCIe transfer in the given direction (``h2d`` or ``d2h``)."""
        if direction == "h2d":
            self.h2d_bytes += int(nbytes)
        elif direction == "d2h":
            self.d2h_bytes += int(nbytes)
        else:
            raise ValueError(f"unknown transfer direction {direction!r}")

    def charge_atomics(self, ops: int, conflicts: int = 0) -> None:
        """Charge atomic operations and serialised conflicts."""
        self.atomic_ops += int(ops)
        self.atomic_conflicts += int(conflicts)

    def merge(self, other: "CostModel") -> "CostModel":
        """Accumulate another cost model's counters into this one."""
        for f in fields(CostModel):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "CostModel":
        """An independent copy of the current counters."""
        clone = CostModel()
        for f in fields(CostModel):
            setattr(clone, f.name, getattr(self, f.name))
        return clone

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(CostModel):
            setattr(self, f.name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dictionary (for harness tables)."""
        return {f.name: getattr(self, f.name) for f in fields(CostModel)}

    # ------------------------------------------------------------------ #
    # Time conversion
    # ------------------------------------------------------------------ #
    def breakdown(self, spec: "DeviceSpec") -> CostBreakdown:
        """Convert counters to a :class:`CostBreakdown` under ``spec``.

        Compute cycles cover warp steps, the selection-specific kernels
        (prefix sums, binary searches, collision probes, RNG draws) and the
        serialisation penalty of atomic conflicts.  The device executes
        ``spec.concurrent_warps`` warps in parallel.
        """
        cycles = (
            self.warp_steps * spec.cycles_per_warp_step
            + self.prefix_sum_steps * spec.cycles_per_scan_step
            + self.binary_search_steps * spec.cycles_per_search_step
            + self.collision_probes * spec.cycles_per_probe
            + self.rng_draws * spec.cycles_per_rng
            + self.atomic_ops * spec.cycles_per_atomic
            + self.atomic_conflicts * spec.atomic_conflict_penalty
            + self.shared_accesses * spec.cycles_per_shared_access
        )
        compute_time = cycles / (spec.clock_hz * spec.concurrent_warps)
        memory_time = self.global_bytes / spec.memory_bandwidth_bytes
        transfer_time = (self.h2d_bytes + self.d2h_bytes) / spec.pcie_bandwidth_bytes
        launch_time = self.kernel_launches * spec.kernel_launch_overhead
        return CostBreakdown(compute_time, memory_time, transfer_time, launch_time)

    def simulated_time(self, spec: "DeviceSpec") -> float:
        """Total simulated seconds under ``spec``."""
        return self.breakdown(spec).total
