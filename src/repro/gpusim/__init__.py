"""Simulated GPU execution substrate.

The paper runs on NVIDIA V100 GPUs and relies on warp-level primitives
(lock-step lanes, Kogge-Stone warp scans, atomic compare-and-swap on shared
bitmaps), CUDA streams overlapping PCIe transfers with kernels, and a 16 GB
device-memory capacity that forces out-of-memory scheduling for the largest
graphs.

This package substitutes a deterministic software model of that machine:

* :mod:`~repro.gpusim.prng` -- a counter-based (SplitMix/Philox style)
  pseudo-random generator so every lane draws reproducible random numbers.
* :mod:`~repro.gpusim.costmodel` -- operation counters (warp steps, memory
  traffic, atomic conflicts, transfers) converted into simulated seconds via
  a :class:`~repro.gpusim.device.DeviceSpec`.
* :mod:`~repro.gpusim.device` -- device specifications (V100-like GPU and a
  POWER9-like CPU for baselines) and a :class:`Device` with memory capacity
  tracking.
* :mod:`~repro.gpusim.warp` -- the warp-centric execution abstraction
  (lock-step lanes, divergence accounting).
* :mod:`~repro.gpusim.scan` -- Kogge-Stone inclusive/exclusive warp scans.
* :mod:`~repro.gpusim.atomics` -- atomic operations with contention
  accounting on shared words.
* :mod:`~repro.gpusim.memory` -- device memory allocation plus the PCIe
  transfer engine used by out-of-memory sampling.
* :mod:`~repro.gpusim.kernel` -- kernels, thread blocks and streams whose
  timelines overlap transfers and compute.

Everything that decides *which vertex gets sampled* is computed exactly; the
simulator only synthesises the *time* those operations would take, which is
what the paper's figures compare.
"""

from repro.gpusim.prng import CounterRNG
from repro.gpusim.costmodel import CostModel, CostBreakdown
from repro.gpusim.device import DeviceSpec, Device, V100_SPEC, POWER9_SPEC, make_device
from repro.gpusim.warp import WarpExecutor, WARP_SIZE
from repro.gpusim.scan import kogge_stone_inclusive, kogge_stone_exclusive, warp_prefix_sum
from repro.gpusim.atomics import AtomicCounter, atomic_cas_bitmap, atomic_add
from repro.gpusim.memory import DeviceMemory, TransferEngine, AllocationError
from repro.gpusim.kernel import Stream, KernelLaunch, StreamTimeline

__all__ = [
    "CounterRNG",
    "CostModel",
    "CostBreakdown",
    "DeviceSpec",
    "Device",
    "V100_SPEC",
    "POWER9_SPEC",
    "make_device",
    "WarpExecutor",
    "WARP_SIZE",
    "kogge_stone_inclusive",
    "kogge_stone_exclusive",
    "warp_prefix_sum",
    "AtomicCounter",
    "atomic_cas_bitmap",
    "atomic_add",
    "DeviceMemory",
    "TransferEngine",
    "AllocationError",
    "Stream",
    "KernelLaunch",
    "StreamTimeline",
]
