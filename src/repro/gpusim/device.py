"""Device specifications and the simulated device object.

Two presets are provided:

* :data:`V100_SPEC` -- modelled after the NVIDIA Tesla V100 the paper uses on
  Summit (80 SMs, ~900 GB/s HBM2, 16 GB capacity, PCIe/NVLink host link);
* :data:`POWER9_SPEC` -- modelled after the dual-socket 22-core POWER9 host
  (used by the KnightKing / GraphSAINT CPU baselines; ~170 GB/s memory
  bandwidth as quoted in Section VI-A).

Only *ratios* between the two matter for reproducing the paper's
C-SAW-vs-CPU-baseline figures; the absolute numbers are order-of-magnitude
realistic but not calibrated against real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.gpusim.costmodel import CostModel
from repro.gpusim.memory import DeviceMemory

__all__ = ["DeviceSpec", "Device", "V100_SPEC", "POWER9_SPEC", "make_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated execution device.

    The per-operation cycle costs are deliberately coarse -- they only need to
    rank strategies the way real hardware does (atomic conflicts cost more
    than uncontended atomics, shared-memory linear probes are cheaper per
    access than global traffic but scale linearly, PCIe is ~50x slower than
    HBM, ...).
    """

    name: str
    #: Number of warps the device can execute concurrently (SMs x warps/SM for
    #: a GPU; hardware threads for a CPU "warp" of width 1).
    concurrent_warps: int
    warp_size: int
    clock_hz: float
    memory_bandwidth_bytes: float
    pcie_bandwidth_bytes: float
    memory_capacity_bytes: int
    kernel_launch_overhead: float = 5e-6
    cycles_per_warp_step: float = 1.0
    cycles_per_scan_step: float = 2.0
    cycles_per_search_step: float = 4.0
    cycles_per_probe: float = 2.0
    cycles_per_rng: float = 8.0
    cycles_per_atomic: float = 12.0
    atomic_conflict_penalty: float = 48.0
    cycles_per_shared_access: float = 2.0

    def scaled(self, **overrides) -> "DeviceSpec":
        """A copy of this spec with selected fields overridden."""
        return replace(self, **overrides)


#: NVIDIA Tesla V100-like specification (Summit node GPU).
#:
#: ``concurrent_warps`` is the *effective* concurrency on irregular,
#: random-access sampling workloads rather than the architectural maximum of
#: 80 SMs x 64 resident warps: memory divergence keeps only a fraction of the
#: resident warps usefully busy.  The kernel-launch overhead is likewise
#: scaled to the reproduction's ~1/1000-size workloads so fixed costs keep the
#: same relative weight they have at paper scale.
V100_SPEC = DeviceSpec(
    name="V100",
    concurrent_warps=1024,
    warp_size=32,
    clock_hz=1.53e9,
    memory_bandwidth_bytes=900e9,
    pcie_bandwidth_bytes=16e9,
    memory_capacity_bytes=16 * 1024**3,
    kernel_launch_overhead=2e-7,
)

#: Dual-socket POWER9-like CPU specification used for the CPU baselines.
#: 44 cores with SMT; the per-"kernel" overhead models the fork-join /
#: bulk-synchronous step cost of the multi-threaded CPU engines.
POWER9_SPEC = DeviceSpec(
    name="POWER9",
    concurrent_warps=88,
    warp_size=1,
    clock_hz=3.8e9,
    memory_bandwidth_bytes=170e9,
    pcie_bandwidth_bytes=64e9,          # host memory needs no PCIe hop
    memory_capacity_bytes=512 * 1024**3,
    kernel_launch_overhead=2e-6,
    cycles_per_rng=20.0,                # scalar Mersenne-Twister style draws
    cycles_per_atomic=30.0,
    atomic_conflict_penalty=120.0,
)


class Device:
    """A simulated device: a spec, a memory pool and a cost accumulator."""

    def __init__(self, spec: DeviceSpec, *, device_id: int = 0,
                 memory_capacity_bytes: Optional[int] = None):
        self.spec = spec
        self.device_id = device_id
        capacity = memory_capacity_bytes if memory_capacity_bytes is not None else spec.memory_capacity_bytes
        self.memory = DeviceMemory(capacity)
        self.cost = CostModel()

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Human-readable device name including its id."""
        return f"{self.spec.name}:{self.device_id}"

    def simulated_time(self) -> float:
        """Simulated seconds for everything charged to this device so far."""
        return self.cost.simulated_time(self.spec)

    def reset(self) -> None:
        """Clear accumulated cost and release all memory."""
        self.cost.reset()
        self.memory.reset()

    def snapshot(self) -> Dict[str, float]:
        """Summary dictionary used by the benchmark harness."""
        breakdown = self.cost.breakdown(self.spec)
        return {
            "device": self.name,
            "simulated_time_s": breakdown.total,
            "compute_time_s": breakdown.compute_time,
            "memory_time_s": breakdown.memory_time,
            "transfer_time_s": breakdown.transfer_time,
            "launch_time_s": breakdown.launch_time,
            "memory_used_bytes": self.memory.used_bytes,
            **{f"count_{k}": v for k, v in self.cost.as_dict().items()},
        }

    def __repr__(self) -> str:
        return f"Device({self.name}, used={self.memory.used_bytes}B)"


def make_device(kind: str = "gpu", *, device_id: int = 0,
                memory_capacity_bytes: Optional[int] = None) -> Device:
    """Create a simulated device: ``"gpu"`` (V100-like) or ``"cpu"`` (POWER9-like)."""
    kind = kind.lower()
    if kind == "gpu":
        return Device(V100_SPEC, device_id=device_id, memory_capacity_bytes=memory_capacity_bytes)
    if kind == "cpu":
        return Device(POWER9_SPEC, device_id=device_id, memory_capacity_bytes=memory_capacity_bytes)
    raise ValueError(f"unknown device kind {kind!r}; expected 'gpu' or 'cpu'")
