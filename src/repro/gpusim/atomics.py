"""Atomic operations with contention accounting.

The strided-bitmap optimisation (Section IV-B) exists because GPU atomics on
the *same* word serialise: when several lanes of a warp compare-and-swap bits
that live in the same 8-bit variable, the hardware replays the conflicting
lanes.  The contiguous bitmap packs adjacent vertices into the same word and
therefore conflicts often; the strided bitmap scatters adjacent vertices
across words and conflicts rarely.

This module provides warp-scoped atomic primitives that perform the operation
exactly (so collision detection is correct) and report how many of the
accesses in a warp step contended for the same word, which the cost model
turns into serialisation penalty cycles.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gpusim.costmodel import CostModel

__all__ = ["AtomicCounter", "atomic_add", "atomic_cas_bitmap", "count_word_conflicts"]


def count_word_conflicts(word_indices: np.ndarray) -> int:
    """Number of serialised replays when lanes touch the given words together.

    If ``k`` lanes hit the same word in one warp step, the hardware performs
    one access and ``k - 1`` replays; the total conflict count is therefore
    ``len(word_indices) - num_unique_words``.
    """
    word_indices = np.asarray(word_indices)
    if word_indices.size == 0:
        return 0
    return int(word_indices.size - np.unique(word_indices).size)


def atomic_add(
    array: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray | int = 1,
    cost: Optional[CostModel] = None,
) -> np.ndarray:
    """Warp-scoped ``atomicAdd``: returns the value *before* each addition.

    Duplicated indices within the call are applied sequentially in lane order,
    exactly as serialised hardware atomics would, so the returned "old" values
    reflect earlier lanes' additions.
    """
    indices = np.asarray(indices, dtype=np.int64)
    values = np.broadcast_to(np.asarray(values), indices.shape)
    old = np.empty(indices.shape, dtype=array.dtype)
    # Serialise in lane order to reproduce hardware semantics for duplicates.
    for lane, (idx, val) in enumerate(zip(indices, values)):
        old[lane] = array[idx]
        array[idx] += val
    if cost is not None:
        cost.charge_atomics(indices.size, count_word_conflicts(indices))
    return old


def atomic_cas_bitmap(
    bitmap_words: np.ndarray,
    word_indices: np.ndarray,
    bit_offsets: np.ndarray,
    cost: Optional[CostModel] = None,
) -> Tuple[np.ndarray, int]:
    """Warp-scoped atomic test-and-set of bits inside 8-bit bitmap words.

    Parameters
    ----------
    bitmap_words:
        ``uint8`` array of bitmap words, modified in place.
    word_indices, bit_offsets:
        Per-lane word index and bit position to set.

    Returns
    -------
    (was_set, conflicts):
        ``was_set[lane]`` is True when the bit was already 1 (i.e. another
        thread -- possibly an earlier lane in this very call -- selected the
        vertex first), and ``conflicts`` is the number of serialised replays
        caused by lanes sharing a word.
    """
    word_indices = np.asarray(word_indices, dtype=np.int64)
    bit_offsets = np.asarray(bit_offsets, dtype=np.int64)
    if word_indices.shape != bit_offsets.shape:
        raise ValueError("word_indices and bit_offsets must have the same shape")
    if np.any(bit_offsets < 0) or np.any(bit_offsets >= 8):
        raise ValueError("bit offsets must be in [0, 8)")
    was_set = np.zeros(word_indices.shape, dtype=bool)
    for lane in range(word_indices.size):
        widx = word_indices[lane]
        mask = np.uint8(1 << int(bit_offsets[lane]))
        was_set[lane] = bool(bitmap_words[widx] & mask)
        bitmap_words[widx] |= mask
    conflicts = count_word_conflicts(word_indices)
    if cost is not None:
        cost.charge_atomics(word_indices.size, conflicts)
        cost.collision_probes += int(word_indices.size)
    return was_set, conflicts


class AtomicCounter:
    """A single shared counter with ``fetch_add`` semantics (e.g. queue tails)."""

    def __init__(self, initial: int = 0):
        self._value = int(initial)
        self.operations = 0

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    def fetch_add(self, amount: int = 1, cost: Optional[CostModel] = None) -> int:
        """Add ``amount`` and return the previous value."""
        old = self._value
        self._value += int(amount)
        self.operations += 1
        if cost is not None:
            cost.charge_atomics(1, 0)
        return old

    def reset(self, value: int = 0) -> None:
        """Reset the counter."""
        self._value = int(value)
