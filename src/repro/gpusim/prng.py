"""Counter-based pseudo-random number generation.

The paper uses cuRAND to give every GPU thread an independent random stream.
We reproduce that property with a counter-based generator in the spirit of
Philox/SplitMix64: a 64-bit mixing function applied to a counter derived from
``(seed, instance, depth, lane, attempt)``.  Counter-based generation has two
properties the framework depends on:

* **determinism** -- the vertex a lane selects depends only on its logical
  coordinates, never on scheduling order, so multi-GPU instance division and
  out-of-order partition scheduling produce bit-identical samples; and
* **vectorisation** -- a whole warp's random numbers are produced with a few
  NumPy operations instead of per-lane Python calls.
"""

from __future__ import annotations

import numpy as np

__all__ = ["splitmix64", "CounterRNG"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64_MAX = np.float64(2.0**64)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised SplitMix64 finaliser: maps uint64 -> well-mixed uint64."""
    with np.errstate(over="ignore"):
        z = (np.asarray(x, dtype=np.uint64) + _GOLDEN).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z = z ^ (z >> np.uint64(31))
    return z


class CounterRNG:
    """Deterministic, stateless random number source keyed by counters.

    Every call mixes the seed with up to four stream coordinates (for example
    instance id, depth, lane id and retry attempt) to form a counter that is
    hashed with SplitMix64.  Identical coordinates always yield identical
    numbers.
    """

    def __init__(self, seed: int = 0):
        self._seed = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)

    @property
    def seed(self) -> int:
        """The 64-bit seed this generator was constructed with."""
        return int(self._seed)

    # ------------------------------------------------------------------ #
    def _counter(self, *coords: np.ndarray | int) -> np.ndarray:
        """Combine coordinates into a single uint64 counter array."""
        arrays = [np.asarray(c, dtype=np.uint64) for c in coords]
        result = np.broadcast_arrays(*arrays) if len(arrays) > 1 else arrays
        acc = np.full(result[0].shape if result[0].shape else (), self._seed, dtype=np.uint64)
        with np.errstate(over="ignore"):
            for i, arr in enumerate(result):
                acc = splitmix64(acc ^ (arr + np.uint64(i + 1) * _GOLDEN))
        return acc

    # ------------------------------------------------------------------ #
    def random_u64(self, *coords: np.ndarray | int) -> np.ndarray:
        """Raw 64-bit integers for the given coordinates."""
        if not coords:
            raise ValueError("at least one coordinate is required")
        return self._counter(*coords)

    def uniform(self, *coords: np.ndarray | int) -> np.ndarray:
        """Uniform floats in ``[0, 1)`` for the given coordinates."""
        bits = self.random_u64(*coords)
        return bits.astype(np.float64) / _U64_MAX

    def randint(self, low: int, high: int, *coords: np.ndarray | int) -> np.ndarray:
        """Uniform integers in ``[low, high)`` for the given coordinates."""
        if high <= low:
            raise ValueError("high must exceed low")
        span = np.uint64(high - low)
        bits = self.random_u64(*coords)
        return (bits % span).astype(np.int64) + np.int64(low)

    def derive(self, label: int) -> "CounterRNG":
        """A new generator whose streams are independent of this one."""
        new_seed = splitmix64(np.uint64(self._seed) ^ splitmix64(np.uint64(label)))
        return CounterRNG(int(new_seed))

    def __repr__(self) -> str:
        return f"CounterRNG(seed={self.seed:#x})"
