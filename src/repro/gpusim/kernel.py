"""Kernels, thread blocks and CUDA-stream timelines.

Out-of-memory C-SAW (Section V-B) dedicates one kernel and one CUDA stream to
each actively sampled partition so that partition transfers overlap with the
sampling of other partitions, and balances workload by adjusting the number
of thread blocks given to each kernel.

The simulator models this with explicit timelines: a :class:`Stream` is a
monotonically growing clock onto which transfers and kernels are enqueued;
the device-level makespan is the maximum stream clock.  A
:class:`KernelLaunch` converts a kernel's cost-model counters into a duration
scaled by the fraction of the device's thread blocks the kernel was granted,
which is exactly how thread-block-based workload balancing changes relative
kernel times in Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec

__all__ = ["KernelLaunch", "Stream", "StreamTimeline"]


@dataclass
class KernelLaunch:
    """One kernel execution: its cost, block allocation and resulting duration."""

    name: str
    cost: CostModel
    #: Fraction of the device's thread blocks granted to this kernel (0, 1].
    block_fraction: float = 1.0
    #: Number of warp-sized tasks the kernel contains.  A kernel cannot use
    #: more concurrent warps than it has tasks, which is how under-filled
    #: kernels (non-batched per-instance sampling, small multi-GPU shares)
    #: lose efficiency.
    num_warp_tasks: int = 1_000_000_000

    def duration(self, spec: DeviceSpec) -> float:
        """Simulated kernel time under ``spec`` with the granted block share.

        A kernel given half the blocks runs on half the concurrent warps, so
        compute time doubles while memory/transfer terms are unchanged; a
        kernel with fewer warp tasks than the granted warps is limited by its
        own parallelism instead.
        """
        if not (0.0 < self.block_fraction <= 1.0):
            raise ValueError("block_fraction must be in (0, 1]")
        if self.num_warp_tasks < 1:
            raise ValueError("num_warp_tasks must be >= 1")
        granted = max(1, int(spec.concurrent_warps * self.block_fraction))
        effective = spec.scaled(concurrent_warps=min(granted, self.num_warp_tasks))
        return self.cost.simulated_time(effective) + spec.kernel_launch_overhead


@dataclass
class Stream:
    """A CUDA-stream-like FIFO timeline of transfers and kernels."""

    stream_id: int
    clock: float = 0.0
    events: List[Dict[str, float]] = field(default_factory=list)

    def enqueue(self, name: str, duration: float, *, start_no_earlier_than: float = 0.0) -> float:
        """Append work of ``duration`` seconds; returns its completion time."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self.clock, start_no_earlier_than)
        end = start + duration
        self.events.append({"name": name, "start": start, "end": end})
        self.clock = end
        return end

    def busy_time(self) -> float:
        """Total time this stream spent executing enqueued work."""
        return sum(e["end"] - e["start"] for e in self.events)


class StreamTimeline:
    """A set of streams belonging to one device; tracks the overall makespan."""

    def __init__(self, num_streams: int):
        if num_streams < 1:
            raise ValueError("need at least one stream")
        self.streams = [Stream(stream_id=i) for i in range(num_streams)]

    def __len__(self) -> int:
        return len(self.streams)

    def __getitem__(self, index: int) -> Stream:
        return self.streams[index]

    @property
    def makespan(self) -> float:
        """Completion time of the last event across all streams."""
        return max((s.clock for s in self.streams), default=0.0)

    def least_loaded(self) -> Stream:
        """The stream that currently finishes earliest (for greedy placement)."""
        return min(self.streams, key=lambda s: s.clock)

    def kernel_times(self) -> List[float]:
        """Durations of all kernel events (name-prefixed ``kernel:``)."""
        out: List[float] = []
        for stream in self.streams:
            out.extend(e["end"] - e["start"] for e in stream.events if e["name"].startswith("kernel:"))
        return out

    def transfer_times(self) -> List[float]:
        """Durations of all transfer events (name-prefixed ``transfer:``)."""
        out: List[float] = []
        for stream in self.streams:
            out.extend(e["end"] - e["start"] for e in stream.events if e["name"].startswith("transfer:"))
        return out
