"""Device memory pool and PCIe transfer engine.

Out-of-memory C-SAW (Section V) revolves around two hardware constraints the
simulator must expose:

* the GPU can only hold a limited number of graph partitions at once
  (:class:`DeviceMemory` enforces a byte capacity with explicit allocate /
  release of named regions), and
* moving a partition from host to device costs PCIe bandwidth and should be
  overlapped with sampling via ``cudaMemcpyAsync`` on separate streams
  (:class:`TransferEngine` charges transfer bytes to a cost model and returns
  the transfer duration so stream timelines can overlap it with compute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.gpusim.costmodel import CostModel

__all__ = ["AllocationError", "Allocation", "DeviceMemory", "TransferEngine"]


class AllocationError(RuntimeError):
    """Raised when an allocation does not fit in device memory."""


@dataclass(frozen=True)
class Allocation:
    """A named region of simulated device memory."""

    name: str
    nbytes: int


class DeviceMemory:
    """Byte-capacity-limited pool of named allocations."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = int(capacity_bytes)
        self._allocations: Dict[str, Allocation] = {}

    # ------------------------------------------------------------------ #
    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self._capacity

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(a.nbytes for a in self._allocations.values())

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self._capacity - self.used_bytes

    def holds(self, name: str) -> bool:
        """Whether a region with this name is currently resident."""
        return name in self._allocations

    def resident(self) -> Dict[str, int]:
        """Mapping of resident region name to size."""
        return {name: alloc.nbytes for name, alloc in self._allocations.items()}

    # ------------------------------------------------------------------ #
    def can_fit(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would currently fit."""
        return nbytes <= self.free_bytes

    def allocate(self, name: str, nbytes: int) -> Allocation:
        """Allocate a named region, raising :class:`AllocationError` on overflow."""
        if name in self._allocations:
            raise AllocationError(f"region {name!r} is already allocated")
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if not self.can_fit(nbytes):
            raise AllocationError(
                f"allocation {name!r} of {nbytes} bytes does not fit "
                f"(free={self.free_bytes} of {self._capacity})"
            )
        alloc = Allocation(name, int(nbytes))
        self._allocations[name] = alloc
        return alloc

    def release(self, name: str) -> None:
        """Release a named region."""
        if name not in self._allocations:
            raise KeyError(f"region {name!r} is not allocated")
        del self._allocations[name]

    def reset(self) -> None:
        """Release every region."""
        self._allocations.clear()

    def __repr__(self) -> str:
        return f"DeviceMemory(used={self.used_bytes}/{self._capacity} bytes, regions={len(self._allocations)})"


class TransferEngine:
    """Models ``cudaMemcpyAsync`` host<->device transfers.

    Each transfer charges the moved bytes to the supplied cost model and
    returns its duration given a PCIe bandwidth, so callers (the out-of-memory
    scheduler) can place the transfer on a stream timeline and overlap it with
    kernels on other streams.
    """

    def __init__(self, pcie_bandwidth_bytes: float, *, latency_s: float = 10e-6):
        if pcie_bandwidth_bytes <= 0:
            raise ValueError("bandwidth must be positive")
        self._bandwidth = float(pcie_bandwidth_bytes)
        self._latency = float(latency_s)
        self.total_h2d_bytes = 0
        self.total_d2h_bytes = 0
        self.transfer_count = 0

    def transfer_time(self, nbytes: int) -> float:
        """Duration in seconds of a transfer of ``nbytes``."""
        return self._latency + nbytes / self._bandwidth

    def host_to_device(self, nbytes: int, cost: Optional[CostModel] = None) -> float:
        """Record an H2D transfer and return its duration."""
        self.total_h2d_bytes += int(nbytes)
        self.transfer_count += 1
        if cost is not None:
            cost.charge_transfer(nbytes, direction="h2d")
            cost.partition_transfers += 1
        return self.transfer_time(nbytes)

    def device_to_host(self, nbytes: int, cost: Optional[CostModel] = None) -> float:
        """Record a D2H transfer and return its duration."""
        self.total_d2h_bytes += int(nbytes)
        self.transfer_count += 1
        if cost is not None:
            cost.charge_transfer(nbytes, direction="d2h")
        return self.transfer_time(nbytes)
