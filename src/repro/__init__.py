"""repro: a reproduction of C-SAW (SC 2020) -- graph sampling and random walk.

The package implements the paper's bias-centric sampling framework on top of
a simulated GPU substrate, together with the algorithm zoo, out-of-memory /
multi-GPU scheduling, CPU baselines and the benchmark harness that
regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import generate_dataset, sample_graph
>>> from repro.algorithms import UnbiasedNeighborSampling
>>> graph = generate_dataset("AM", seed=1)
>>> program = UnbiasedNeighborSampling()
>>> result = sample_graph(graph, program, seeds=[0, 1, 2],
...                       config=program.default_config(depth=2, neighbor_size=2))
>>> result.total_sampled_edges > 0
True
"""

from repro.graph import (
    CSRGraph,
    from_edge_list,
    from_networkx,
    generate_dataset,
    partition_graph,
    graph_stats,
    TABLE2_DATASETS,
)
from repro.api import (
    SamplingProgram,
    SamplingConfig,
    SelectionScope,
    PoolPolicy,
    GraphSampler,
    sample_graph,
    SampleResult,
)
from repro.gpusim import Device, DeviceSpec, make_device, V100_SPEC, POWER9_SPEC
from repro.selection import CollisionStrategy

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "from_edge_list",
    "from_networkx",
    "generate_dataset",
    "partition_graph",
    "graph_stats",
    "TABLE2_DATASETS",
    "SamplingProgram",
    "SamplingConfig",
    "SelectionScope",
    "PoolPolicy",
    "GraphSampler",
    "sample_graph",
    "SampleResult",
    "Device",
    "DeviceSpec",
    "make_device",
    "V100_SPEC",
    "POWER9_SPEC",
    "CollisionStrategy",
    "__version__",
]
