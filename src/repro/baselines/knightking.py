"""KnightKing-like walker-centric CPU random-walk engine (Fig. 9(a) baseline).

KnightKing (SOSP'19) is a distributed CPU engine built around a
*walker-centric* model: every walker is an independent actor that repeatedly
samples an out-edge of its current vertex and moves.  For *static* transition
probabilities it pre-computes per-vertex alias tables (O(1) per step after
O(E) preprocessing); for *dynamic* probabilities it falls back to rejection
(dartboard) sampling.  Execution proceeds in bulk-synchronous steps over all
walkers, parallelised across CPU threads.

This module reproduces that engine faithfully enough to serve as the paper's
comparison point: it produces real walks and charges a CPU cost model
(POWER9-like spec) with the alias-table lookups, RNG draws and memory traffic
of every step, so its SEPS can be compared with C-SAW's on the same graphs.
The alias-table preprocessing cost is tracked separately (the paper's SEPS
uses sampling time only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import POWER9_SPEC, DeviceSpec
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.prng import CounterRNG
from repro.graph.csr import CSRGraph
from repro.selection.incremental import VertexAliasCache

__all__ = ["KnightKingEngine", "KnightKingResult"]

#: Cycles charged per walker step for the dependent (cache-missing) pointer
#: chase of CSR traversal on a CPU.  A GPU hides this latency by switching
#: among thousands of resident warps; a CPU thread executing one walker's
#: serial chain cannot, which is a large part of why the paper's GPU framework
#: wins despite the CPU's higher clock.
DEPENDENT_ACCESS_CYCLES = 250


@dataclass
class KnightKingResult:
    """Walks produced by the engine plus its cost accounting."""

    walks: List[np.ndarray]
    cost: CostModel
    preprocessing_cost: CostModel
    kernels: List[KernelLaunch] = field(default_factory=list)
    spec: DeviceSpec = POWER9_SPEC

    @property
    def total_sampled_edges(self) -> int:
        """Total number of walk steps taken (each step samples one edge)."""
        return int(sum(max(len(w) - 1, 0) for w in self.walks))

    def kernel_time(self, spec: Optional[DeviceSpec] = None) -> float:
        """Simulated sampling time (preprocessing excluded, as in the paper)."""
        spec = spec or self.spec
        if self.kernels:
            return float(sum(k.duration(spec) for k in self.kernels))
        return float(self.cost.simulated_time(spec))

    def preprocessing_time(self, spec: Optional[DeviceSpec] = None) -> float:
        """Simulated alias-table construction time."""
        spec = spec or self.spec
        return float(self.preprocessing_cost.simulated_time(spec))

    def seps(self, spec: Optional[DeviceSpec] = None) -> float:
        """Sampled edges per simulated second."""
        time = self.kernel_time(spec)
        return self.total_sampled_edges / time if time > 0 else 0.0


class KnightKingEngine:
    """Walker-centric biased/unbiased random walk on the simulated CPU."""

    def __init__(
        self,
        graph: CSRGraph,
        *,
        biased: bool = True,
        seed: int = 0,
        spec: DeviceSpec = POWER9_SPEC,
    ):
        if graph.num_vertices == 0:
            raise ValueError("cannot walk an empty graph")
        self.graph = graph
        self.biased = biased and graph.is_weighted
        self.spec = spec
        self.rng = CounterRNG(seed)
        self.preprocessing_cost = CostModel()
        self._alias_cache: Optional[VertexAliasCache] = None
        if self.biased:
            self._alias_cache = VertexAliasCache.build(
                graph, self.preprocessing_cost
            )

    # ------------------------------------------------------------------ #
    def update_graph(self, graph: CSRGraph,
                     touched: Optional[np.ndarray] = None) -> None:
        """Swap in a mutated graph, patching alias tables incrementally.

        ``touched`` is the changed-vertex set a
        :meth:`~repro.graph.delta.DeltaGraph.compact` reports; only those
        vertices' alias tables are rebuilt (and charged to the
        preprocessing cost).  With ``touched=None`` every table is rebuilt
        -- the full static preprocessing pass.
        """
        if graph.num_vertices == 0:
            raise ValueError("cannot walk an empty graph")
        if self.biased and not graph.is_weighted:
            raise ValueError("a biased engine needs a weighted graph")
        self.graph = graph
        if not self.biased:
            return
        if touched is None or self._alias_cache is None:
            self._alias_cache = VertexAliasCache.build(
                graph, self.preprocessing_cost
            )
        else:
            self._alias_cache.update(graph, touched, self.preprocessing_cost)

    # ------------------------------------------------------------------ #
    def run_walks(
        self,
        seeds: Sequence[int] | np.ndarray,
        walk_length: int,
        *,
        num_walkers: Optional[int] = None,
    ) -> KnightKingResult:
        """Run one walk per seed (seeds reused round-robin up to ``num_walkers``)."""
        if walk_length < 1:
            raise ValueError("walk_length must be >= 1")
        seeds = list(np.asarray(seeds, dtype=np.int64).reshape(-1))
        if not seeds:
            raise ValueError("at least one seed is required")
        if num_walkers is not None:
            reps = int(np.ceil(num_walkers / len(seeds)))
            seeds = (seeds * reps)[:num_walkers]
        for s in seeds:
            if not (0 <= s < self.graph.num_vertices):
                raise ValueError(f"seed {s} outside the graph")

        cost = CostModel()
        kernels: List[KernelLaunch] = []
        walks = [[int(s)] for s in seeds]
        current = np.asarray(seeds, dtype=np.int64)
        active = self.graph.degrees[current] > 0

        for step in range(walk_length):
            if not active.any():
                break
            step_cost = CostModel()
            moved = 0
            for walker in np.nonzero(active)[0]:
                vertex = int(current[walker])
                nxt = self._step_walker(vertex, int(walker), step, step_cost)
                if nxt is None:
                    active[walker] = False
                    continue
                walks[walker].append(nxt)
                current[walker] = nxt
                moved += 1
                if self.graph.degrees[nxt] == 0:
                    active[walker] = False
            step_cost.sampled_edges += moved
            kernels.append(
                KernelLaunch(
                    name=f"kernel:bsp_step{step}",
                    cost=step_cost,
                    num_warp_tasks=max(moved, 1),
                )
            )
            cost.merge(step_cost)

        return KnightKingResult(
            walks=[np.asarray(w, dtype=np.int64) for w in walks],
            cost=cost,
            preprocessing_cost=self.preprocessing_cost,
            kernels=kernels,
            spec=self.spec,
        )

    # ------------------------------------------------------------------ #
    def _step_walker(self, vertex: int, walker: int, step: int, cost: CostModel) -> Optional[int]:
        """Advance one walker by one step; returns the next vertex or None."""
        neighbors = self.graph.neighbors(vertex)
        if neighbors.size == 0:
            return None
        cost.charge_global_bytes(neighbors.nbytes + 16)
        cost.charge_warp_step(DEPENDENT_ACCESS_CYCLES, active_lanes=1)
        if self.biased:
            if not self._alias_cache.has(vertex):
                return None
            table = self._alias_cache.table(vertex)
            index = table.sample(self.rng, walker, step, cost=cost)
        else:
            r = float(self.rng.uniform(walker, step))
            cost.rng_draws += 1
            cost.selection_attempts += 1
            cost.charge_warp_step(1, active_lanes=1)
            index = min(int(r * neighbors.size), neighbors.size - 1)
        return int(neighbors[index])
