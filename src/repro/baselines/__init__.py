"""Baselines: reference implementations and the paper's comparator systems.

* :mod:`~repro.baselines.reference` -- straightforward NumPy reference
  samplers used as correctness oracles by the test suite (no cost model, no
  GPU semantics; just the mathematically expected behaviour).
* :mod:`~repro.baselines.knightking` -- a KnightKing-like walker-centric CPU
  random-walk engine (alias tables for static biases, rejection sampling for
  dynamic ones, BSP stepping) used as the comparator of Fig. 9(a).
* :mod:`~repro.baselines.graphsaint` -- a GraphSAINT-like CPU
  multi-dimensional random-walk (frontier) sampler used as the comparator of
  Fig. 9(b).
"""

from repro.baselines.reference import (
    reference_select_with_replacement,
    reference_select_without_replacement,
    reference_random_walk,
    reference_neighbor_sampling,
)
from repro.baselines.knightking import KnightKingEngine, KnightKingResult
from repro.baselines.graphsaint import GraphSAINTSampler, GraphSAINTResult

__all__ = [
    "reference_select_with_replacement",
    "reference_select_without_replacement",
    "reference_random_walk",
    "reference_neighbor_sampling",
    "KnightKingEngine",
    "KnightKingResult",
    "GraphSAINTSampler",
    "GraphSAINTResult",
]
