"""Reference samplers used as correctness oracles.

These implementations use :class:`numpy.random.Generator` directly and make
no attempt to model GPU execution; they exist so the test suite can compare
the framework's selection distributions and sample structure against an
independent, easy-to-audit implementation of the same mathematical
definitions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "reference_select_with_replacement",
    "reference_select_without_replacement",
    "reference_random_walk",
    "reference_neighbor_sampling",
]


def _normalised(biases: np.ndarray) -> np.ndarray:
    biases = np.asarray(biases, dtype=np.float64)
    if biases.ndim != 1 or biases.size == 0:
        raise ValueError("biases must be a non-empty 1-D array")
    if np.any(biases < 0) or not np.all(np.isfinite(biases)):
        raise ValueError("biases must be non-negative and finite")
    total = biases.sum()
    if total <= 0:
        raise ValueError("at least one bias must be positive")
    return biases / total


def reference_select_with_replacement(
    biases: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """i.i.d. selection proportional to biases (Theorem 1), with replacement."""
    probs = _normalised(biases)
    return rng.choice(probs.size, size=count, replace=True, p=probs).astype(np.int64)


def reference_select_without_replacement(
    biases: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Sequential weighted selection without replacement.

    Candidate ``k`` is drawn proportionally to its bias among the not-yet
    selected candidates -- the distribution updated sampling (and therefore
    bipartite region search) realises.
    """
    probs = _normalised(biases)
    if count > int(np.count_nonzero(probs > 0)):
        raise ValueError("not enough candidates with positive bias")
    remaining = probs.copy()
    chosen: List[int] = []
    for _ in range(count):
        current = remaining / remaining.sum()
        pick = int(rng.choice(current.size, p=current))
        chosen.append(pick)
        remaining[pick] = 0.0
    return np.asarray(chosen, dtype=np.int64)


def reference_random_walk(
    graph: CSRGraph,
    start: int,
    length: int,
    rng: np.random.Generator,
    *,
    biased: bool = False,
) -> np.ndarray:
    """A single random walk; returns the visited vertex sequence (start included)."""
    path = [int(start)]
    current = int(start)
    for _ in range(length):
        neighbors = graph.neighbors(current)
        if neighbors.size == 0:
            break
        if biased and graph.is_weighted:
            weights = graph.neighbor_weights(current)
            probs = weights / weights.sum()
            current = int(rng.choice(neighbors, p=probs))
        else:
            current = int(rng.choice(neighbors))
        path.append(current)
    return np.asarray(path, dtype=np.int64)


def reference_neighbor_sampling(
    graph: CSRGraph,
    seed: int,
    neighbor_size: int,
    depth: int,
    rng: np.random.Generator,
    *,
    biased: bool = False,
) -> Tuple[np.ndarray, set]:
    """BFS-style neighbor sampling without replacement.

    Returns ``(edges, visited)`` where ``edges`` is an ``(n, 2)`` array of
    sampled edges and ``visited`` the set of vertices in the sample.
    """
    frontier = [int(seed)]
    visited = {int(seed)}
    edges: List[Tuple[int, int]] = []
    for _ in range(depth):
        next_frontier: List[int] = []
        for vertex in frontier:
            neighbors = graph.neighbors(vertex)
            if neighbors.size == 0:
                continue
            if biased and graph.is_weighted:
                weights = graph.neighbor_weights(vertex)
                probs = weights / weights.sum()
            else:
                probs = np.full(neighbors.size, 1.0 / neighbors.size)
            count = min(neighbor_size, int(np.count_nonzero(probs > 0)))
            picks = rng.choice(neighbors.size, size=count, replace=False, p=probs)
            for p in picks:
                target = int(neighbors[p])
                edges.append((vertex, target))
                if target not in visited:
                    visited.add(target)
                    next_frontier.append(target)
        frontier = next_frontier
        if not frontier:
            break
    edge_array = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    return edge_array, visited
