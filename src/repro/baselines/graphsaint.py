"""GraphSAINT-like CPU multi-dimensional random-walk sampler (Fig. 9(b) baseline).

GraphSAINT's C++ sampler used in the paper's comparison implements
multi-dimensional random walk (frontier sampling): each sampling instance
keeps a frontier pool of ``m`` vertices, repeatedly picks one pool vertex with
probability proportional to its degree, replaces it with one uniformly random
neighbor, and accumulates the traversed edges into the sampled subgraph.
Instances are distributed across CPU threads (instance-grained parallelism).

The implementation below mirrors that behaviour and charges a CPU cost model
with the per-step work (degree-proportional pool selection via inverse
transform over the pool, one neighbor pick, the associated memory traffic),
so its SEPS is directly comparable with C-SAW's GPU numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import POWER9_SPEC, DeviceSpec
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.prng import CounterRNG
from repro.graph.csr import CSRGraph

__all__ = ["GraphSAINTSampler", "GraphSAINTResult"]

#: Cycles charged per sampling step for the dependent (cache-missing) pointer
#: chase of CSR traversal on a CPU thread; see the same constant in
#: :mod:`repro.baselines.knightking`.
DEPENDENT_ACCESS_CYCLES = 250


@dataclass
class GraphSAINTResult:
    """Sampled subgraphs (one per instance) plus cost accounting."""

    edges_per_instance: List[np.ndarray]
    cost: CostModel
    kernels: List[KernelLaunch] = field(default_factory=list)
    spec: DeviceSpec = POWER9_SPEC

    @property
    def total_sampled_edges(self) -> int:
        """Total sampled edges across instances."""
        return int(sum(e.shape[0] for e in self.edges_per_instance))

    def kernel_time(self, spec: Optional[DeviceSpec] = None) -> float:
        """Simulated sampling time on the CPU spec."""
        spec = spec or self.spec
        if self.kernels:
            return float(sum(k.duration(spec) for k in self.kernels))
        return float(self.cost.simulated_time(spec))

    def seps(self, spec: Optional[DeviceSpec] = None) -> float:
        """Sampled edges per simulated second."""
        time = self.kernel_time(spec)
        return self.total_sampled_edges / time if time > 0 else 0.0


class GraphSAINTSampler:
    """Multi-dimensional random-walk (frontier) sampler on the simulated CPU."""

    def __init__(self, graph: CSRGraph, *, seed: int = 0, spec: DeviceSpec = POWER9_SPEC):
        if graph.num_vertices == 0:
            raise ValueError("cannot sample an empty graph")
        self.graph = graph
        self.spec = spec
        self.rng = CounterRNG(seed)

    # ------------------------------------------------------------------ #
    def run(
        self,
        *,
        num_instances: int,
        frontier_size: int,
        steps: int,
        seeds: Optional[Sequence[int]] = None,
    ) -> GraphSAINTResult:
        """Sample ``num_instances`` subgraphs of ``steps`` frontier-walk steps each.

        ``seeds`` optionally fixes the initial frontier pool vertices; by
        default pools are drawn uniformly at random per instance (GraphSAINT's
        behaviour).
        """
        if num_instances < 1 or frontier_size < 1 or steps < 1:
            raise ValueError("num_instances, frontier_size and steps must be >= 1")
        cost = CostModel()
        kernels: List[KernelLaunch] = []
        edges_per_instance: List[np.ndarray] = []

        for instance in range(num_instances):
            inst_cost = CostModel()
            pool = self._initial_pool(instance, frontier_size, seeds)
            src_list: List[int] = []
            dst_list: List[int] = []
            degrees = self.graph.degrees[pool].astype(np.float64)
            for step in range(steps):
                # Degree-proportional pool selection (inverse transform over
                # the pool's degree prefix sums, recomputed as the pool changes).
                biases = degrees + 1.0
                total = biases.sum()
                r = float(self.rng.uniform(instance, step, 0)) * total
                slot = int(np.searchsorted(np.cumsum(biases), r, side="right"))
                slot = min(slot, pool.size - 1)
                vertex = int(pool[slot])
                inst_cost.rng_draws += 1
                # Serial CPU prefix sum over the pool: O(pool) work and O(pool)
                # bytes read, every step (C-SAW's warp-parallel scan pays only
                # the logarithmic span for the same job).
                inst_cost.prefix_sum_steps += int(pool.size)
                inst_cost.charge_global_bytes(int(pool.size) * 8)
                inst_cost.binary_search_steps += max(1, int(np.ceil(np.log2(pool.size + 1))))
                inst_cost.selection_attempts += 1
                inst_cost.charge_warp_step(1, active_lanes=1)

                neighbors = self.graph.neighbors(vertex)
                inst_cost.charge_global_bytes(neighbors.nbytes + 16)
                inst_cost.charge_warp_step(DEPENDENT_ACCESS_CYCLES, active_lanes=1)
                if neighbors.size == 0:
                    continue
                r2 = float(self.rng.uniform(instance, step, 1))
                inst_cost.rng_draws += 1
                pick = int(min(r2 * neighbors.size, neighbors.size - 1))
                target = int(neighbors[pick])
                src_list.append(vertex)
                dst_list.append(target)
                pool[slot] = target
                degrees[slot] = float(self.graph.degrees[target])
            inst_cost.sampled_edges += len(src_list)
            cost.merge(inst_cost)
            edges = (
                np.column_stack([src_list, dst_list])
                if src_list
                else np.empty((0, 2), dtype=np.int64)
            )
            edges_per_instance.append(edges)

        # Instance-grained parallelism: the whole job is one parallel region
        # whose concurrency is bounded by the number of instances (threads).
        kernels.append(
            KernelLaunch(
                name="kernel:graphsaint_sampling",
                cost=cost.copy(),
                num_warp_tasks=num_instances,
            )
        )

        return GraphSAINTResult(
            edges_per_instance=edges_per_instance,
            cost=cost,
            kernels=kernels,
            spec=self.spec,
        )

    # ------------------------------------------------------------------ #
    def _initial_pool(
        self, instance: int, frontier_size: int, seeds: Optional[Sequence[int]]
    ) -> np.ndarray:
        if seeds is not None:
            seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
            if seeds.size < frontier_size:
                reps = int(np.ceil(frontier_size / seeds.size))
                seeds = np.tile(seeds, reps)
            return seeds[:frontier_size].copy()
        lanes = np.arange(frontier_size, dtype=np.int64)
        draws = np.atleast_1d(self.rng.uniform(np.int64(instance), lanes, np.int64(977)))
        return np.minimum((draws * self.graph.num_vertices).astype(np.int64),
                          self.graph.num_vertices - 1)
